package openflow

import (
	"context"
	"net"
	"reflect"
	"testing"

	"manorm/internal/mat"
	"manorm/internal/packet"
	"manorm/internal/switches"
	"manorm/internal/telemetry"
	"manorm/internal/usecases"
)

func TestMessageRoundTrips(t *testing.T) {
	msgs := []*Message{
		{Type: TypeHello, XID: 1},
		{Type: TypeEchoRequest, XID: 2, Payload: []byte("ping")},
		{Type: TypeEchoReply, XID: 3, Payload: []byte{}},
		{Type: TypeBarrierRequest, XID: 4},
		{Type: TypeBarrierReply, XID: 5},
		{Type: TypeError, XID: 6, Err: "nope"},
		{Type: TypeStatsRequest, XID: 7, Stats: &Stats{TableID: 3}},
		{Type: TypeStatsReply, XID: 8, Stats: &Stats{TableID: 3, Counts: []uint64{1, 0, 99}}},
		{Type: TypeFlowMod, XID: 9, Flow: &FlowMod{
			Command: FlowAdd,
			TableID: 2,
			Match: []MatchField{
				{Name: "ip_dst", Width: 32, Cell: mat.IPv4("192.0.2.1")},
				{Name: "ip_src", Width: 32, Cell: mat.Prefix(0x80000000, 1, 32)},
			},
			Actions: []ActionField{
				{Name: "out", Width: 16, Value: 7},
				{Name: mat.GotoAttr, Width: 16, Value: 3},
			},
		}},
	}
	for _, m := range msgs {
		frame, err := Encode(m)
		if err != nil {
			t.Fatalf("%s: encode: %v", m.Type, err)
		}
		back, err := Decode(frame)
		if err != nil {
			t.Fatalf("%s: decode: %v", m.Type, err)
		}
		if m.Type != back.Type || m.XID != back.XID || m.Err != back.Err {
			t.Errorf("%s: header mismatch: %+v vs %+v", m.Type, m, back)
		}
		if m.Flow != nil && !reflect.DeepEqual(m.Flow, back.Flow) {
			t.Errorf("flow-mod mismatch:\n%+v\n%+v", m.Flow, back.Flow)
		}
		if m.Stats != nil && !reflect.DeepEqual(m.Stats, back.Stats) {
			t.Errorf("stats mismatch: %+v vs %+v", m.Stats, back.Stats)
		}
		if len(m.Payload) > 0 && string(m.Payload) != string(back.Payload) {
			t.Errorf("payload mismatch")
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		{9, 1, 0, 8, 0, 0, 0, 0},  // bad version
		{1, 99, 0, 8, 0, 0, 0, 0}, // unknown type
		{1, 1, 0, 99, 0, 0, 0, 0}, // length mismatch
		{1, byte(TypeFlowMod), 0, 9, 0, 0, 0, 0, 1}, // truncated flow-mod
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: garbage decoded", i)
		}
	}
}

// pipePair builds a connected agent/client over net.Pipe; the agent serves
// an ESwitch model programmed with a gwlb representation.
func pipePair(t *testing.T, g *usecases.GwLB, rep usecases.Representation) (*Client, *Agent, switches.Switch) {
	t.Helper()
	p, err := g.Build(rep)
	if err != nil {
		t.Fatal(err)
	}
	sw := switches.NewESwitch()
	agent, err := NewAgent(sw, p)
	if err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	go agent.Serve(context.Background(), a) //nolint:errcheck — ends when the pipe closes
	client, err := NewClient(b)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client, agent, sw
}

func TestEchoAndBarrier(t *testing.T) {
	client, _, _ := pipePair(t, usecases.Fig1(), usecases.RepGoto)
	ctx := context.Background()
	if err := client.Echo(ctx, []byte("hello switch")); err != nil {
		t.Fatal(err)
	}
	if err := client.Barrier(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestServicePortUpdateOverChannel(t *testing.T) {
	// The §2 controllability scenario as an end-to-end control exchange:
	// tenant 1 moves from HTTP to HTTPS. On the normalized (goto)
	// pipeline this is ONE flow-mod on the service table.
	g := usecases.Fig1()
	client, agent, sw := pipePair(t, g, usecases.RepGoto)

	// Before: port 80 forwards, 443 drops.
	pkt := packet.TCP4(1, 2, 0x01000000, 0xC0000201, 1234, 80)
	v, err := sw.Process(pkt)
	if err != nil || v.Drop {
		t.Fatalf("pre-update HTTP packet dropped (%v, %v)", v, err)
	}

	// The service table is stage 0: modify is delete+add of one entry.
	del := &FlowMod{Command: FlowDelete, TableID: 0, Match: []MatchField{
		{Name: "ip_dst", Width: 32, Cell: mat.IPv4("192.0.2.1")},
		{Name: "tcp_dst", Width: 16, Cell: mat.Exact(80, 16)},
	}}
	add := &FlowMod{Command: FlowAdd, TableID: 0,
		Match: []MatchField{
			{Name: "ip_dst", Width: 32, Cell: mat.IPv4("192.0.2.1")},
			{Name: "tcp_dst", Width: 16, Cell: mat.Exact(443, 16)},
		},
		Actions: []ActionField{{Name: mat.GotoAttr, Width: 16, Value: 1}},
	}
	ctx := context.Background()
	if err := client.SendFlowMod(ctx, del); err != nil {
		t.Fatal(err)
	}
	if err := client.SendFlowMod(ctx, add); err != nil {
		t.Fatal(err)
	}
	if err := client.Barrier(ctx); err != nil {
		t.Fatal(err)
	}

	// After: 443 forwards to the same backends, 80 drops.
	v, err = sw.Process(packet.TCP4(1, 2, 0x01000000, 0xC0000201, 1234, 443))
	if err != nil || v.Drop || v.Port != 1 {
		t.Fatalf("post-update HTTPS packet: %+v, %v", v, err)
	}
	v, err = sw.Process(packet.TCP4(1, 2, 0x01000000, 0xC0000201, 1234, 80))
	if err != nil || !v.Drop {
		t.Fatalf("post-update HTTP packet still forwarded: %+v", v)
	}
	if agent.ModsApplied != 2 {
		t.Errorf("ModsApplied = %d, want 2", agent.ModsApplied)
	}
	if client.ModsSent != 2 {
		t.Errorf("ModsSent = %d, want 2", client.ModsSent)
	}
}

func TestStatsOverChannel(t *testing.T) {
	g := usecases.Fig1()
	client, _, sw := pipePair(t, g, usecases.RepGoto)
	for i := 0; i < 7; i++ {
		if _, err := sw.Process(packet.TCP4(1, 2, 0x01000000, 0xC0000201, 1234, 80)); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	counts, err := client.ReadStats(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 3 {
		t.Fatalf("stats arity = %d, want 3 services", len(counts))
	}
	if counts[0] != 7 {
		t.Errorf("service 0 count = %d, want 7", counts[0])
	}
	// Out-of-range table errors, and the failure is typed: the switch
	// rejected it (not a channel fault), so it must not be retried.
	if _, err := client.ReadStats(ctx, 99); err == nil {
		t.Errorf("stats for bad table succeeded")
	}
}

func TestAgentFlowModValidation(t *testing.T) {
	g := usecases.Fig1()
	_, agent, _ := pipePair(t, g, usecases.RepGoto)
	bad := []*FlowMod{
		nil,
		{Command: FlowAdd, TableID: 99},
		{Command: FlowAdd, TableID: 0, Match: []MatchField{{Name: "bogus", Width: 8}}},
		{Command: FlowAdd, TableID: 0, Match: []MatchField{{Name: "out", Width: 16}}},
		{Command: FlowDelete, TableID: 0, Match: []MatchField{
			{Name: "ip_dst", Width: 32, Cell: mat.IPv4("9.9.9.9")},
			{Name: "tcp_dst", Width: 16, Cell: mat.Exact(9, 16)},
		}},
		{Command: FlowModify, TableID: 0, Match: []MatchField{
			{Name: "ip_dst", Width: 32, Cell: mat.IPv4("9.9.9.9")},
		}},
		{Command: FlowAdd, TableID: 0, Match: []MatchField{
			{Name: "ip_dst", Width: 32, Cell: mat.IPv4("9.9.9.9")},
		}}, // missing goto action
		{Command: FlowModCommand(99), TableID: 0},
	}
	for i, f := range bad {
		if err := agent.ApplyFlowMod(f); err == nil {
			t.Errorf("case %d: bad flow-mod accepted", i)
		}
	}
	// Duplicate add.
	dup := &FlowMod{Command: FlowAdd, TableID: 0,
		Match: []MatchField{
			{Name: "ip_dst", Width: 32, Cell: mat.IPv4("192.0.2.1")},
			{Name: "tcp_dst", Width: 16, Cell: mat.Exact(80, 16)},
		},
		Actions: []ActionField{{Name: mat.GotoAttr, Width: 16, Value: 1}},
	}
	if err := agent.ApplyFlowMod(dup); err == nil {
		t.Errorf("duplicate add accepted")
	}
}

func TestCommitIsLazy(t *testing.T) {
	g := usecases.Fig1()
	_, agent, sw := pipePair(t, g, usecases.RepGoto)
	mod := &FlowMod{Command: FlowDelete, TableID: 0, Match: []MatchField{
		{Name: "ip_dst", Width: 32, Cell: mat.IPv4("192.0.2.3")},
		{Name: "tcp_dst", Width: 16, Cell: mat.Exact(22, 16)},
	}}
	if err := agent.ApplyFlowMod(mod); err != nil {
		t.Fatal(err)
	}
	// Not yet committed: SSH still forwards.
	v, err := sw.Process(packet.TCP4(1, 2, 3, 0xC0000203, 1234, 22))
	if err != nil || v.Drop {
		t.Fatalf("uncommitted mod already visible: %+v, %v", v, err)
	}
	if err := agent.Commit(); err != nil {
		t.Fatal(err)
	}
	v, err = sw.Process(packet.TCP4(1, 2, 3, 0xC0000203, 1234, 22))
	if err != nil || !v.Drop {
		t.Fatalf("committed delete not visible: %+v, %v", v, err)
	}
}

func TestCommitRejectsAmbiguousEntries(t *testing.T) {
	g := usecases.Fig1()
	_, agent, sw := pipePair(t, g, usecases.RepGoto)
	// Add an entry to tenant 1's LB table that overlaps the existing 0/1
	// split at equal specificity (128/1 exists; add another row matching
	// the same half via a different-but-overlapping /1? /1 values are 0
	// and 1 only, both taken. Use the service table instead: same
	// specificity as an existing row but overlapping is impossible for
	// exact matches unless identical — which FlowAdd rejects as
	// duplicate. So build ambiguity in an LB table: tenant 3's table has
	// a single catch-all; add (0.0.0.0/1) -> totals differ (1 vs 0), not
	// ambiguous. Instead add a second catch-all with different actions —
	// rejected as duplicate. The reachable ambiguity: two /1 rows in
	// tenant 3's table, then delete nothing... add 0/1 and 128/1: fine
	// (disjoint). True ambiguity needs multi-column overlap; the gwlb LB
	// tables are single-column, so ambiguity cannot arise there — which
	// is itself worth asserting: every commit path stays valid.
	if err := agent.ApplyFlowMod(&FlowMod{Command: FlowAdd, TableID: 3,
		Match:   []MatchField{{Name: "ip_src", Width: 32, Cell: mat.Prefix(0, 1, 32)}},
		Actions: []ActionField{{Name: "out", Width: 16, Value: 9}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := agent.Commit(); err != nil {
		t.Fatalf("disjoint add rejected: %v", err)
	}
	v, err := sw.Process(packet.TCP4(1, 2, 0x01000000, 0xC0000203, 4, 22))
	if err != nil || v.Drop || v.Port != 9 {
		t.Fatalf("new LB split not effective: %+v, %v", v, err)
	}

	// Now a genuinely ambiguous pair through the control channel: a
	// two-column stage exists in the metadata representation (meta,
	// ip_src). Overlap at equal specificity: (tag=0 exact, src *) vs
	// an existing (tag=0, src 0/1)? totals 16 vs 17 — differ. Identical
	// totals need (tag exact, src 0/1) vs (tag exact, src 128/1) —
	// disjoint. The reachable ambiguous shape in gwlb-metadata is two
	// identical-total overlapping rows across columns; construct it on a
	// fresh two-field table via the universal representation: add
	// (ip_src 10.0.0.0/16, ip_dst *, tcp_dst 80) against existing
	// exact-VIP rows: totals 16+0+16 = 32 vs 1+32+16 = 49 — differ.
	// Overlapping equal-total pairs genuinely cannot be built from this
	// use case's shapes; assert the validator stays quiet on all of it.
	if err := agent.Commit(); err != nil {
		t.Fatalf("idempotent commit failed: %v", err)
	}
}

func TestCommitAmbiguityValidator(t *testing.T) {
	// Direct validator exercise: a hand-built pipeline where a flow-mod
	// creates cross-column ambiguity, which the barrier must reject.
	tab := mat.New("T", mat.Schema{mat.F("ip", 32), mat.F("port", 16), mat.A("out", 16)})
	tab.Add(mat.IPv4Prefix("10.0.0.0", 16), mat.Any(), mat.Exact(1, 16))
	p := &mat.Pipeline{Name: "amb", Start: 0, Stages: []mat.Stage{{Table: tab, Next: -1, MissDrop: true}}}
	agent, err := NewAgent(switches.NewLagopus(), p)
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.ApplyFlowMod(&FlowMod{Command: FlowAdd, TableID: 0,
		Match:   []MatchField{{Name: "port", Width: 16, Cell: mat.Exact(80, 16)}},
		Actions: []ActionField{{Name: "out", Width: 16, Value: 2}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := agent.Commit(); err == nil {
		t.Fatalf("ambiguous commit accepted")
	}
}

// TestDumpFlowsRoundTrip pulls the agent's pipeline over the wire and
// checks it matches the installed logical state, including flow-mods
// accepted since the last barrier.
func TestDumpFlowsRoundTrip(t *testing.T) {
	g := usecases.Fig1()
	p, err := g.Build(usecases.RepGoto)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewAgent(switches.NewESwitch(), p)
	if err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	go agent.Serve(context.Background(), a) //nolint:errcheck — ends with the pipe
	client, err := NewClient(b)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx := context.Background()
	dump, err := client.DumpFlows(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.Stages) != len(p.Stages) {
		t.Fatalf("dump has %d stages, want %d", len(dump.Stages), len(p.Stages))
	}
	for si := range p.Stages {
		if got, want := len(dump.Stages[si].Table.Entries), len(p.Stages[si].Table.Entries); got != want {
			t.Fatalf("stage %d: dump has %d entries, want %d", si, got, want)
		}
	}

	// An uncommitted flow-mod is part of the logical state and must show
	// up in the dump.
	mod := &FlowMod{Command: FlowDelete, TableID: 0, Match: []MatchField{
		{Name: "ip_dst", Width: 32, Cell: mat.Exact(uint64(g.Services[0].VIP), 32)},
		{Name: "tcp_dst", Width: 16, Cell: mat.Exact(uint64(g.Services[0].Port), 16)},
	}}
	if err := client.SendFlowMod(ctx, mod); err != nil {
		t.Fatal(err)
	}
	if err := client.Barrier(ctx); err != nil {
		t.Fatal(err)
	}
	dump2, err := client.DumpFlows(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(dump2.Stages[0].Table.Entries); got != len(p.Stages[0].Table.Entries) {
		t.Fatalf("post-delete dump has %d first-stage entries, want %d", got, len(p.Stages[0].Table.Entries))
	}
}

// TestClientRegisterTelemetry checks the live gauges mirror the client's
// resilience counters.
func TestClientRegisterTelemetry(t *testing.T) {
	g := usecases.Fig1()
	p, err := g.Build(usecases.RepGoto)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewAgent(switches.NewESwitch(), p)
	if err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	go agent.Serve(context.Background(), a) //nolint:errcheck
	client, err := NewClient(b)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	reg := telemetry.NewRegistry()
	client.RegisterTelemetry(reg)
	snap := reg.Snapshot()
	for _, name := range []string{"resend_queue_depth", "reconnects", "backoff_attempts", "timeouts", "mods_resent"} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Fatalf("gauge %q not registered", name)
		}
	}
	if got := snap.Gauges["resend_queue_depth"]; got != 0 {
		t.Fatalf("idle resend queue depth gauge = %v, want 0", got)
	}

	// Queue a mod without a barrier: the depth gauge must see it live.
	mod := &FlowMod{Command: FlowDelete, TableID: 0, Match: []MatchField{
		{Name: "ip_dst", Width: 32, Cell: mat.Exact(uint64(g.Services[0].VIP), 32)},
		{Name: "tcp_dst", Width: 16, Cell: mat.Exact(uint64(g.Services[0].Port), 16)},
	}}
	if err := client.SendFlowMod(context.Background(), mod); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Gauges["resend_queue_depth"]; got != 1 {
		t.Fatalf("resend queue depth gauge = %v, want 1", got)
	}
	if err := client.Barrier(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Gauges["resend_queue_depth"]; got != 0 {
		t.Fatalf("post-barrier resend queue depth gauge = %v, want 0", got)
	}
}
