// Package openflow implements a compact OpenFlow-inspired control
// protocol: binary-framed Hello/Echo/FlowMod/Barrier/Stats messages over
// any net.Conn, a switch-side agent that applies flow-mods to an installed
// match-action pipeline, and a controller-side client.
//
// The protocol is deliberately a *subset-with-liberties* of OpenFlow 1.3:
// matches are (field-name, pattern) pairs rather than OXM TLV codepoints,
// which keeps the wire format aligned with the attribute-name view used by
// the rest of the system while preserving the operational semantics the
// paper's reactiveness experiment depends on — per-table flow
// modifications, barriers, and counter reads.
package openflow

import (
	"encoding/binary"
	"fmt"

	"manorm/internal/mat"
)

// Version is the protocol version byte.
const Version = 1

// MsgType enumerates message types.
type MsgType uint8

// Message types.
const (
	TypeHello MsgType = iota + 1
	TypeEchoRequest
	TypeEchoReply
	TypeFlowMod
	TypeBarrierRequest
	TypeBarrierReply
	TypeStatsRequest
	TypeStatsReply
	TypeError
	// TypeFlowDumpRequest asks the switch for its full logical pipeline;
	// TypeFlowDumpReply answers with the pipeline in the JSON form of
	// internal/mat. The dump powers controller-side resynchronization
	// (full state transfer after a reconnect) and the fabric convergence
	// checker, which renormalizes each switch's installed rule set.
	TypeFlowDumpRequest
	TypeFlowDumpReply
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeEchoRequest:
		return "echo-request"
	case TypeEchoReply:
		return "echo-reply"
	case TypeFlowMod:
		return "flow-mod"
	case TypeBarrierRequest:
		return "barrier-request"
	case TypeBarrierReply:
		return "barrier-reply"
	case TypeStatsRequest:
		return "stats-request"
	case TypeStatsReply:
		return "stats-reply"
	case TypeError:
		return "error"
	case TypeFlowDumpRequest:
		return "flow-dump-request"
	case TypeFlowDumpReply:
		return "flow-dump-reply"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// FlowModCommand selects the flow-mod operation.
type FlowModCommand uint8

// Flow-mod commands.
const (
	FlowAdd FlowModCommand = iota + 1
	FlowModify
	FlowDelete
)

// MatchField is one (name, pattern) match in a flow-mod.
type MatchField struct {
	Name  string
	Width uint8
	Cell  mat.Cell
}

// ActionField is one (name, value) action in a flow-mod. Goto targets use
// the reserved mat.GotoAttr name.
type ActionField struct {
	Name  string
	Width uint8
	Value uint64
}

// FlowMod is a flow-table modification request.
type FlowMod struct {
	Command FlowModCommand
	// TableID addresses the pipeline stage.
	TableID uint8
	Match   []MatchField
	Actions []ActionField
}

// Message is one framed control message.
type Message struct {
	Type MsgType
	XID  uint32
	// Flow carries the flow-mod body for TypeFlowMod.
	Flow *FlowMod
	// Stats carries counters for TypeStatsReply, and the table selector
	// for TypeStatsRequest (TableID in Flow is not used for stats).
	Stats *Stats
	// Err carries the error text for TypeError.
	Err string
	// Payload carries opaque bytes for echo messages, and the
	// acknowledged flow-mod xids (big-endian uint32s) for
	// TypeBarrierReply — the switch's receipt list that lets a client on
	// a lossy channel detect silently dropped flow-mods and resend them.
	Payload []byte
}

// Stats is a counter snapshot: per-entry packet counts of one table, or
// the table selector in a request.
type Stats struct {
	TableID uint8
	Counts  []uint64
}

// maxMessage bounds decoded message sizes (defense against corrupt peers).
const maxMessage = 1 << 20

// Encode serializes a message with its 8-byte header
// (version, type, length, xid).
func Encode(m *Message) ([]byte, error) {
	body, err := encodeBody(m)
	if err != nil {
		return nil, err
	}
	if len(body)+8 > maxMessage {
		return nil, badFrame("message too large: %d", len(body)+8)
	}
	out := make([]byte, 8+len(body))
	out[0] = Version
	out[1] = byte(m.Type)
	binary.BigEndian.PutUint16(out[2:], uint16(len(out)))
	binary.BigEndian.PutUint32(out[4:], m.XID)
	copy(out[8:], body)
	return out, nil
}

func encodeBody(m *Message) ([]byte, error) {
	var b []byte
	switch m.Type {
	case TypeHello, TypeBarrierRequest, TypeFlowDumpRequest:
		return nil, nil
	case TypeBarrierReply:
		// The payload is the ack-xid list (4-byte aligned by
		// construction; see appendAckXIDs).
		return m.Payload, nil
	case TypeEchoRequest, TypeEchoReply:
		return m.Payload, nil
	case TypeFlowDumpReply:
		// The payload is the JSON-encoded logical pipeline.
		return m.Payload, nil
	case TypeError:
		return append(b, m.Err...), nil
	case TypeStatsRequest:
		if m.Stats == nil {
			return nil, badFrame("stats-request without selector")
		}
		return []byte{m.Stats.TableID}, nil
	case TypeStatsReply:
		if m.Stats == nil {
			return nil, badFrame("stats-reply without stats")
		}
		b = append(b, m.Stats.TableID)
		b = appendUint32(b, uint32(len(m.Stats.Counts)))
		for _, c := range m.Stats.Counts {
			b = appendUint64(b, c)
		}
		return b, nil
	case TypeFlowMod:
		f := m.Flow
		if f == nil {
			return nil, badFrame("flow-mod without body")
		}
		b = append(b, byte(f.Command), f.TableID)
		b = appendUint16(b, uint16(len(f.Match)))
		for _, mf := range f.Match {
			b = appendString(b, mf.Name)
			b = append(b, mf.Width, mf.Cell.PLen)
			b = appendUint64(b, mf.Cell.Bits)
		}
		b = appendUint16(b, uint16(len(f.Actions)))
		for _, af := range f.Actions {
			b = appendString(b, af.Name)
			b = append(b, af.Width)
			b = appendUint64(b, af.Value)
		}
		return b, nil
	default:
		return nil, unsupported("cannot encode type %s", m.Type)
	}
}

// Decode parses one full frame previously produced by Encode.
func Decode(frame []byte) (*Message, error) {
	if len(frame) < 8 {
		return nil, badFrame("short frame: %d bytes", len(frame))
	}
	if frame[0] != Version {
		return nil, badFrame("bad version %d", frame[0])
	}
	if int(binary.BigEndian.Uint16(frame[2:])) != len(frame) {
		return nil, badFrame("length field %d != frame %d", binary.BigEndian.Uint16(frame[2:]), len(frame))
	}
	m := &Message{Type: MsgType(frame[1]), XID: binary.BigEndian.Uint32(frame[4:])}
	body := frame[8:]
	switch m.Type {
	case TypeHello, TypeBarrierRequest, TypeFlowDumpRequest:
		return m, nil
	case TypeBarrierReply:
		if len(body)%4 != 0 {
			return nil, badFrame("barrier-reply ack list not 4-byte aligned")
		}
		m.Payload = append([]byte(nil), body...)
		return m, nil
	case TypeEchoRequest, TypeEchoReply, TypeFlowDumpReply:
		m.Payload = append([]byte(nil), body...)
		return m, nil
	case TypeError:
		m.Err = string(body)
		return m, nil
	case TypeStatsRequest:
		if len(body) != 1 {
			return nil, badFrame("bad stats-request body")
		}
		m.Stats = &Stats{TableID: body[0]}
		return m, nil
	case TypeStatsReply:
		if len(body) < 5 {
			return nil, badFrame("bad stats-reply body")
		}
		s := &Stats{TableID: body[0]}
		n := binary.BigEndian.Uint32(body[1:])
		body = body[5:]
		if uint64(len(body)) != uint64(n)*8 {
			return nil, badFrame("stats-reply length mismatch")
		}
		for i := uint32(0); i < n; i++ {
			s.Counts = append(s.Counts, binary.BigEndian.Uint64(body[i*8:]))
		}
		m.Stats = s
		return m, nil
	case TypeFlowMod:
		f := &FlowMod{}
		if len(body) < 4 {
			return nil, badFrame("bad flow-mod body")
		}
		f.Command = FlowModCommand(body[0])
		f.TableID = body[1]
		nMatch := binary.BigEndian.Uint16(body[2:])
		body = body[4:]
		var err error
		for i := 0; i < int(nMatch); i++ {
			var mf MatchField
			mf.Name, body, err = takeString(body)
			if err != nil {
				return nil, err
			}
			if len(body) < 10 {
				return nil, badFrame("truncated match field")
			}
			mf.Width = body[0]
			mf.Cell = mat.Cell{PLen: body[1], Bits: binary.BigEndian.Uint64(body[2:])}
			body = body[10:]
			f.Match = append(f.Match, mf)
		}
		if len(body) < 2 {
			return nil, badFrame("truncated action count")
		}
		nAct := binary.BigEndian.Uint16(body)
		body = body[2:]
		for i := 0; i < int(nAct); i++ {
			var af ActionField
			af.Name, body, err = takeString(body)
			if err != nil {
				return nil, err
			}
			if len(body) < 9 {
				return nil, badFrame("truncated action field")
			}
			af.Width = body[0]
			af.Value = binary.BigEndian.Uint64(body[1:])
			body = body[9:]
			f.Actions = append(f.Actions, af)
		}
		if len(body) != 0 {
			return nil, badFrame("%d trailing bytes in flow-mod", len(body))
		}
		m.Flow = f
		return m, nil
	default:
		return nil, unsupported("unknown type %d", frame[1])
	}
}

// appendAckXIDs encodes the barrier-reply receipt list.
func appendAckXIDs(b []byte, xids []uint32) []byte {
	for _, x := range xids {
		b = appendUint32(b, x)
	}
	return b
}

// parseAckXIDs decodes a barrier-reply payload (validated 4-byte aligned
// by Decode).
func parseAckXIDs(payload []byte) []uint32 {
	if len(payload) < 4 {
		return nil
	}
	out := make([]uint32, 0, len(payload)/4)
	for i := 0; i+4 <= len(payload); i += 4 {
		out = append(out, binary.BigEndian.Uint32(payload[i:]))
	}
	return out
}

func appendUint16(b []byte, v uint16) []byte {
	return append(b, byte(v>>8), byte(v))
}

func appendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendUint64(b []byte, v uint64) []byte {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], v)
	return append(b, tmp[:]...)
}

func appendString(b []byte, s string) []byte {
	if len(s) > 255 {
		s = s[:255]
	}
	b = append(b, byte(len(s)))
	return append(b, s...)
}

func takeString(b []byte) (string, []byte, error) {
	if len(b) < 1 {
		return "", nil, badFrame("truncated string")
	}
	n := int(b[0])
	if len(b) < 1+n {
		return "", nil, badFrame("truncated string body")
	}
	return string(b[1 : 1+n]), b[1+n:], nil
}
