package openflow

import (
	"context"
	"encoding/json"
	"sync/atomic"

	"manorm/internal/mat"
	"manorm/internal/telemetry"
)

// DumpFlows pulls the switch's full logical pipeline over the wire — the
// state-transfer primitive behind controller-side resynchronization and
// the fabric convergence checker. The reply reflects every flow-mod the
// agent has accepted, including ones awaiting the next barrier.
func (c *Client) DumpFlows(ctx context.Context) (*mat.Pipeline, error) {
	reply, err := c.rpc(ctx, "flow-dump", &Message{Type: TypeFlowDumpRequest})
	if err != nil {
		return nil, err
	}
	if len(reply.Payload) == 0 {
		return nil, opErr("flow-dump", reply.XID, -1, badFrame("flow-dump reply without body"))
	}
	p := &mat.Pipeline{}
	if err := json.Unmarshal(reply.Payload, p); err != nil {
		return nil, opErr("flow-dump", reply.XID, -1, badFrame("flow-dump decode: %v", err))
	}
	return p, nil
}

// RegisterTelemetry exposes the client's live resilience state as pull
// gauges on the registry, so dashboards and experiment snapshots see the
// control channel without walking a nested Stats tree:
//
//	resend_queue_depth   flow-mods awaiting barrier acknowledgment
//	reconnects           successful re-dials since creation
//	backoff_attempts     RPC retry attempts (each slept a backoff step)
//	timeouts             per-attempt deadline expiries
//	mods_resent          wire-level flow-mod re-deliveries
//
// The gauges read the same counters Stats snapshots; registering is
// idempotent and costs nothing until snapshot time. A nil registry is a
// no-op.
func (c *Client) RegisterTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("resend_queue_depth", func() float64 { return float64(c.QueueLen()) })
	reg.GaugeFunc("reconnects", func() float64 { return float64(atomic.LoadInt64(&c.reconnects)) })
	reg.GaugeFunc("backoff_attempts", func() float64 { return float64(atomic.LoadInt64(&c.retries)) })
	reg.GaugeFunc("timeouts", func() float64 { return float64(atomic.LoadInt64(&c.timeouts)) })
	reg.GaugeFunc("mods_resent", func() float64 { return float64(atomic.LoadInt64(&c.modsResent)) })
}
