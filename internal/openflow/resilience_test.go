package openflow

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"manorm/internal/faultconn"
	"manorm/internal/mat"
	"manorm/internal/switches"
	"manorm/internal/telemetry"
	"manorm/internal/usecases"
)

func TestRetryPolicyBackoffSchedule(t *testing.T) {
	cases := []struct {
		name   string
		policy RetryPolicy
		want   []time.Duration // jitter-free expected delays per attempt
	}{
		{
			name:   "doubling capped",
			policy: RetryPolicy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Multiplier: 2},
			want: []time.Duration{
				10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
				80 * time.Millisecond, 80 * time.Millisecond,
			},
		},
		{
			name:   "sub-unit multiplier is constant backoff",
			policy: RetryPolicy{Base: 5 * time.Millisecond, Multiplier: 0.5},
			want:   []time.Duration{5 * time.Millisecond, 5 * time.Millisecond, 5 * time.Millisecond},
		},
		{
			name:   "uncapped growth",
			policy: RetryPolicy{Base: time.Millisecond, Multiplier: 3},
			want:   []time.Duration{time.Millisecond, 3 * time.Millisecond, 9 * time.Millisecond, 27 * time.Millisecond},
		},
		{
			name:   "zero base disables backoff",
			policy: RetryPolicy{Multiplier: 2, Max: time.Second},
			want:   []time.Duration{0, 0, 0},
		},
	}
	for _, tc := range cases {
		for attempt, want := range tc.want {
			if got := tc.policy.Delay(attempt, nil); got != want {
				t.Errorf("%s: attempt %d: delay = %v, want %v", tc.name, attempt, got, want)
			}
		}
	}
}

func TestRetryPolicyJitterBoundsAndDeterminism(t *testing.T) {
	p := RetryPolicy{Base: 100 * time.Millisecond, Max: time.Second, Multiplier: 2, Jitter: 0.5}
	rng1 := rand.New(rand.NewSource(7))
	rng2 := rand.New(rand.NewSource(7))
	for attempt := 0; attempt < 6; attempt++ {
		center := p.Delay(attempt, nil)
		d1 := p.Delay(attempt, rng1)
		d2 := p.Delay(attempt, rng2)
		if d1 != d2 {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", attempt, d1, d2)
		}
		lo := time.Duration(float64(center) * 0.75)
		hi := time.Duration(float64(center) * 1.25)
		if d1 < lo || d1 > hi {
			t.Errorf("attempt %d: jittered delay %v outside [%v, %v]", attempt, d1, lo, hi)
		}
	}
}

// dropConn silently discards selected Write calls (1-based write index),
// modeling frame loss on an otherwise healthy channel.
type dropConn struct {
	net.Conn
	n    atomic.Int64
	drop map[int64]bool
}

func (c *dropConn) Write(p []byte) (int, error) {
	if c.drop[c.n.Add(1)] {
		return len(p), nil
	}
	return c.Conn.Write(p)
}

func TestBarrierResendsDroppedFlowMods(t *testing.T) {
	// The channel silently eats one of two flow-mods. The barrier receipt
	// list exposes the gap; the client must resend and re-commit so no
	// update is lost — without a reconnect (the conn stays healthy).
	g := usecases.Fig1()
	p, err := g.Build(usecases.RepGoto)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewAgent(switches.NewESwitch(), p)
	if err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	go agent.Serve(context.Background(), a) //nolint:errcheck — ends with the pipe
	// Client writes: 1 = hello reply, 2 = first flow-mod (dropped),
	// 3 = second flow-mod, 4 = barrier request, 5+ = recovery.
	client, err := NewClient(&dropConn{Conn: b, drop: map[int64]bool{2: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx := context.Background()
	del := &FlowMod{Command: FlowDelete, TableID: 0, Match: []MatchField{
		{Name: "ip_dst", Width: 32, Cell: mat.IPv4("192.0.2.1")},
		{Name: "tcp_dst", Width: 16, Cell: mat.Exact(80, 16)},
	}}
	add := &FlowMod{Command: FlowAdd, TableID: 0,
		Match: []MatchField{
			{Name: "ip_dst", Width: 32, Cell: mat.IPv4("192.0.2.1")},
			{Name: "tcp_dst", Width: 16, Cell: mat.Exact(443, 16)},
		},
		Actions: []ActionField{{Name: mat.GotoAttr, Width: 16, Value: 1}},
	}
	if err := client.SendFlowMod(ctx, del); err != nil {
		t.Fatal(err)
	}
	if err := client.SendFlowMod(ctx, add); err != nil {
		t.Fatal(err)
	}
	if err := client.Barrier(ctx); err != nil {
		t.Fatalf("barrier over lossy channel: %v", err)
	}

	m := client.Stats()
	if n := m.Counters["mods_resent"]; n != 1 {
		t.Errorf("mods_resent = %d, want 1", n)
	}
	if n := m.Counters["reconnects"]; n != 0 {
		t.Errorf("reconnects = %d, want 0 (conn stayed healthy)", n)
	}
	if agent.ModsApplied != 2 {
		t.Errorf("ModsApplied = %d, want 2 (no mod lost)", agent.ModsApplied)
	}
	if client.QueueLen() != 0 {
		t.Errorf("resend queue not drained: %d", client.QueueLen())
	}
}

func TestResendIsIdempotentAcrossReconnect(t *testing.T) {
	// A forced mid-burst disconnect: delivered-but-unacknowledged
	// flow-mods are replayed after the reconnect, and the agent's xid
	// dedup must absorb the duplicates so the final state matches a
	// fault-free run exactly.
	if testing.Short() {
		t.Skip("dials TCP")
	}
	run := func(cut bool) (string, telemetry.Snapshot, *Agent) {
		g := usecases.Fig1()
		p, err := g.Build(usecases.RepGoto)
		if err != nil {
			t.Fatal(err)
		}
		agent, err := NewAgent(switches.NewESwitch(), p)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		go func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				_ = agent.Serve(context.Background(), c)
			}
		}()
		dials := 0
		dialer := func() (net.Conn, error) {
			raw, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				return nil, err
			}
			cfg := faultconn.Config{Seed: 3, MaxReadChunk: 5}
			if cut && dials == 0 {
				// Mid-burst: after the hello reply and the first three
				// mods, the 5th write dies mid-frame.
				cfg.CutAfterWrites = 5
				cfg.CutMidFrame = true
			}
			dials++
			return faultconn.Wrap(raw, cfg), nil
		}
		client, err := NewClient(nil,
			WithDialer(dialer),
			WithRPCTimeout(2*time.Second),
			WithRetryPolicy(RetryPolicy{Base: time.Millisecond, Max: 10 * time.Millisecond, Multiplier: 2, Jitter: 0.25, MaxRetries: 6, Seed: 11}),
		)
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()

		ctx := context.Background()
		// Three updates, one barrier each: move every Fig1 service to a
		// fresh port.
		ports := []uint16{80, 443, 22}
		for i, vip := range []string{"192.0.2.1", "192.0.2.2", "192.0.2.3"} {
			del := &FlowMod{Command: FlowDelete, TableID: 0, Match: []MatchField{
				{Name: "ip_dst", Width: 32, Cell: mat.IPv4(vip)},
				{Name: "tcp_dst", Width: 16, Cell: mat.Exact(uint64(ports[i]), 16)},
			}}
			add := &FlowMod{Command: FlowAdd, TableID: 0,
				Match: []MatchField{
					{Name: "ip_dst", Width: 32, Cell: mat.IPv4(vip)},
					{Name: "tcp_dst", Width: 16, Cell: mat.Exact(uint64(7000+i), 16)},
				},
				Actions: []ActionField{{Name: mat.GotoAttr, Width: 16, Value: uint64(i + 1)}},
			}
			if err := client.SendFlowMod(ctx, del); err != nil {
				t.Fatalf("update %d: %v", i, err)
			}
			if err := client.SendFlowMod(ctx, add); err != nil {
				t.Fatalf("update %d: %v", i, err)
			}
			if err := client.Barrier(ctx); err != nil {
				t.Fatalf("update %d barrier: %v", i, err)
			}
		}
		state, err := json.Marshal(agent.Pipeline())
		if err != nil {
			t.Fatal(err)
		}
		return string(state), client.Stats(), agent
	}

	wantState, _, _ := run(false)
	gotState, m, agent := run(true)
	if n := m.Counters["reconnects"]; n != 1 {
		t.Errorf("reconnects = %d, want 1", n)
	}
	if m.Counters["mods_resent"] == 0 {
		t.Errorf("mods_resent = 0, want > 0 (queue replay after cut)")
	}
	if got := atomic.LoadInt64(&agent.Sessions); got != 2 {
		t.Errorf("agent sessions = %d, want 2", got)
	}
	if gotState != wantState {
		t.Errorf("final state diverged from fault-free run:\n got: %s\nwant: %s", gotState, wantState)
	}
}

func TestContextCancelsClientOps(t *testing.T) {
	client, _, _ := pipePair(t, usecases.Fig1(), usecases.RepGoto)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := client.Barrier(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("barrier: err = %v, want context.Canceled", err)
	}
	if err := client.SendFlowMod(ctx, &FlowMod{Command: FlowDelete, TableID: 0}); !errors.Is(err, context.Canceled) {
		t.Errorf("flow-mod: err = %v, want context.Canceled", err)
	}
	// The client survives: a live context still works.
	if err := client.Echo(context.Background(), []byte("still here")); err != nil {
		t.Errorf("echo after canceled op: %v", err)
	}
}

func TestContextStopsAgentServe(t *testing.T) {
	g := usecases.Fig1()
	p, err := g.Build(usecases.RepGoto)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewAgent(switches.NewESwitch(), p)
	if err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- agent.Serve(ctx, a) }()
	// Complete the handshake so Serve is parked in Recv.
	nc := NewConn(b)
	if m, err := nc.Recv(); err != nil || m.Type != TypeHello {
		t.Fatalf("handshake: %+v, %v", m, err)
	}
	if err := nc.Send(&Message{Type: TypeHello}); err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Serve returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after context cancellation")
	}
}

func TestSwitchRejectionSurfacesAsTypedError(t *testing.T) {
	client, _, _ := pipePair(t, usecases.Fig1(), usecases.RepGoto)
	ctx := context.Background()
	// Deleting a nonexistent entry is a switch-side rejection: permanent,
	// never retried, reported at the commit point.
	bogus := &FlowMod{Command: FlowDelete, TableID: 0, Match: []MatchField{
		{Name: "ip_dst", Width: 32, Cell: mat.IPv4("203.0.113.9")},
		{Name: "tcp_dst", Width: 16, Cell: mat.Exact(1, 16)},
	}}
	if err := client.SendFlowMod(ctx, bogus); err != nil {
		t.Fatal(err)
	}
	err := client.Barrier(ctx)
	var se *SwitchError
	if !errors.As(err, &se) {
		t.Fatalf("barrier err = %v, want *SwitchError", err)
	}
	var oe *OpError
	if !errors.As(err, &oe) || oe.Op != "barrier" {
		t.Errorf("err = %v, want wrapped in a barrier OpError", err)
	}
	if n := client.Stats().Counters["switch_errors"]; n != 1 {
		t.Errorf("switch_errors = %d, want 1", n)
	}
	// The channel is still healthy afterwards.
	if err := client.Echo(ctx, []byte("ok")); err != nil {
		t.Errorf("echo after rejection: %v", err)
	}
	if err := client.Barrier(ctx); err != nil {
		t.Errorf("barrier after rejection: %v", err)
	}
}

func TestClosedClientReturnsErrClosed(t *testing.T) {
	client, _, _ := pipePair(t, usecases.Fig1(), usecases.RepGoto)
	client.Close()
	ctx := context.Background()
	if err := client.Barrier(ctx); !errors.Is(err, ErrClosed) {
		t.Errorf("barrier: err = %v, want ErrClosed", err)
	}
	if err := client.SendFlowMod(ctx, &FlowMod{Command: FlowDelete, TableID: 0}); !errors.Is(err, ErrClosed) {
		t.Errorf("flow-mod: err = %v, want ErrClosed", err)
	}
}

func TestAgentLenientAndStrictDecode(t *testing.T) {
	serve := func(strict bool) (net.Conn, chan error, *Agent) {
		g := usecases.Fig1()
		p, err := g.Build(usecases.RepGoto)
		if err != nil {
			t.Fatal(err)
		}
		agent, err := NewAgent(switches.NewESwitch(), p, WithStrictDecode(strict))
		if err != nil {
			t.Fatal(err)
		}
		a, b := net.Pipe()
		done := make(chan error, 1)
		go func() { done <- agent.Serve(context.Background(), a) }()
		return b, done, agent
	}
	unknownType := []byte{Version, 200, 0, 8, 0, 0, 0, 77}

	// Lenient (default): the agent reports the bad frame and keeps
	// serving.
	b, _, agent := serve(false)
	nc := NewConn(b)
	if m, err := nc.Recv(); err != nil || m.Type != TypeHello {
		t.Fatalf("handshake: %+v, %v", m, err)
	}
	if err := nc.Send(&Message{Type: TypeHello}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write(unknownType); err != nil {
		t.Fatal(err)
	}
	m, err := nc.Recv()
	if err != nil || m.Type != TypeError || m.XID != 77 {
		t.Fatalf("lenient agent reply = %+v, %v; want TypeError xid 77", m, err)
	}
	if err := nc.Send(&Message{Type: TypeEchoRequest, XID: 5, Payload: []byte("alive")}); err != nil {
		t.Fatal(err)
	}
	if m, err := nc.Recv(); err != nil || m.Type != TypeEchoReply {
		t.Fatalf("agent did not survive bad frame: %+v, %v", m, err)
	}
	if n := atomic.LoadInt64(&agent.DecodeErrors); n != 1 {
		t.Errorf("DecodeErrors = %d, want 1", n)
	}
	b.Close()

	// Strict: the same frame terminates the session with the typed error.
	b, done, _ := serve(true)
	nc = NewConn(b)
	if _, err := nc.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := nc.Send(&Message{Type: TypeHello}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write(unknownType); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrUnsupported) {
			t.Errorf("strict Serve err = %v, want ErrUnsupported", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("strict agent kept serving after bad frame")
	}
}
