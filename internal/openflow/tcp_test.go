package openflow

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"

	"manorm/internal/mat"
	"manorm/internal/packet"
	"manorm/internal/switches"
	"manorm/internal/usecases"
)

func startTCPAgent(t *testing.T, g *usecases.GwLB, rep usecases.Representation) (addr string, agent *Agent, sw switches.Switch) {
	t.Helper()
	p, err := g.Build(rep)
	if err != nil {
		t.Fatal(err)
	}
	sw = switches.NewESwitch()
	agent, err = NewAgent(sw, p)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go agent.Serve(context.Background(), c) //nolint:errcheck — session ends with the conn
		}
	}()
	return ln.Addr().String(), agent, sw
}

func dialClient(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(c)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client
}

func TestTCPSession(t *testing.T) {
	g := usecases.Fig1()
	addr, _, sw := startTCPAgent(t, g, usecases.RepGoto)
	client := dialClient(t, addr)

	ctx := context.Background()
	if err := client.Echo(ctx, []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	// Delete the SSH service and commit.
	if err := client.SendFlowMod(ctx, &FlowMod{Command: FlowDelete, TableID: 0, Match: []MatchField{
		{Name: "ip_dst", Width: 32, Cell: mat.IPv4("192.0.2.3")},
		{Name: "tcp_dst", Width: 16, Cell: mat.Exact(22, 16)},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := client.Barrier(ctx); err != nil {
		t.Fatal(err)
	}
	v, err := sw.Process(packet.TCP4(1, 2, 3, 0xC0000203, 4, 22))
	if err != nil || !v.Drop {
		t.Fatalf("delete over TCP not applied: %+v, %v", v, err)
	}
}

func TestTCPConcurrentControllers(t *testing.T) {
	// Several controller sessions hammer barriers, echoes and stats
	// concurrently against one agent; everything must serialize cleanly.
	g := usecases.Generate(8, 4, 3)
	addr, _, _ := startTCPAgent(t, g, usecases.RepMetadata)

	const sessions = 4
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			client, err := NewClient(c)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			ctx := context.Background()
			for k := 0; k < 50; k++ {
				if err := client.Echo(ctx, []byte{byte(id), byte(k)}); err != nil {
					errs <- err
					return
				}
				if err := client.Barrier(ctx); err != nil {
					errs <- err
					return
				}
				if _, err := client.ReadStats(ctx, 0); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestClientSurvivesAgentClose(t *testing.T) {
	g := usecases.Fig1()
	addr, _, _ := startTCPAgent(t, g, usecases.RepGoto)
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(raw)
	if err != nil {
		t.Fatal(err)
	}
	raw.Close()
	// Without a dialer the loss is terminal: RPCs must error out with the
	// typed ErrClosed, not hang and not retry forever.
	if err := client.Barrier(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("barrier on a closed connection: err = %v, want ErrClosed", err)
	}
}
