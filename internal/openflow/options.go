package openflow

import (
	"net"
	"time"
)

// ClientOption configures a Client at construction. Functional options
// keep call sites stable as resilience knobs accumulate.
type ClientOption func(*Client)

// WithRPCTimeout bounds each RPC attempt (handshake, echo, barrier,
// stats). 0 disables the per-attempt deadline (RPCs then only respect the
// caller's context).
func WithRPCTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.rpcTimeout = d }
}

// WithRetryPolicy installs the backoff schedule used for RPC retries and
// reconnect attempts.
func WithRetryPolicy(p RetryPolicy) ClientOption {
	return func(c *Client) { c.retry = p }
}

// WithDialer enables automatic reconnection: on connection failure the
// client redials, re-handshakes, and resends every unacknowledged
// flow-mod (the xid-keyed resend queue) before retrying the failed
// operation. Without a dialer, connection loss is terminal — the
// pre-resilience behavior.
func WithDialer(dial func() (net.Conn, error)) ClientOption {
	return func(c *Client) { c.dial = dial }
}

// WithLatencySamples sets the reservoir size for RPC latency sampling
// (default 1024; 0 keeps the default).
func WithLatencySamples(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.latCap = n
		}
	}
}

// AgentOption configures an Agent at construction.
type AgentOption func(*Agent)

// WithStrictDecode makes any malformed control frame terminate the
// session. By default the agent is lenient: a well-framed message that
// fails to decode is answered with a TypeError and the session continues
// (graceful degradation under a corrupting channel); only framing-level
// desynchronization ends the session.
func WithStrictDecode(strict bool) AgentOption {
	return func(a *Agent) { a.strictDecode = strict }
}
