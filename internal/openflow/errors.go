package openflow

import (
	"errors"
	"fmt"
)

// Sentinel errors classify every failure mode of the control channel.
// They are the stable API surface: callers branch with errors.Is and
// recover structured context with errors.As on *OpError / *SwitchError,
// never by matching message strings.
var (
	// ErrTimeout reports an RPC that did not complete within the client's
	// per-attempt deadline (the reply may still be in flight; retried
	// attempts use fresh xids so stale replies are discarded).
	ErrTimeout = errors.New("openflow: timeout")
	// ErrClosed reports an operation on a closed or broken connection.
	ErrClosed = errors.New("openflow: connection closed")
	// ErrBadFrame reports a frame that failed to encode or decode. A
	// decode failure of a self-consistent frame leaves the stream usable
	// (the next frame starts right after it); a corrupt length field does
	// not, and marks the Conn broken.
	ErrBadFrame = errors.New("openflow: bad frame")
	// ErrUnsupported reports a message type or flow-mod command the peer
	// does not implement.
	ErrUnsupported = errors.New("openflow: unsupported")
)

// OpError decorates a channel failure with the operation, the xid it was
// issued under, and (for table-addressed operations) the table. It wraps
// the underlying cause for errors.Is/As traversal.
type OpError struct {
	// Op names the failing operation: "rpc", "flow-mod", "barrier",
	// "echo", "stats", "recv", "handshake", "reconnect".
	Op string
	// XID is the transaction the failure belongs to (0 when none).
	XID uint32
	// Table is the addressed table, or -1 when not table-addressed.
	Table int
	// Err is the underlying cause.
	Err error
}

func (e *OpError) Error() string {
	msg := fmt.Sprintf("openflow: %s", e.Op)
	if e.XID != 0 {
		msg += fmt.Sprintf(" xid=%d", e.XID)
	}
	if e.Table >= 0 {
		msg += fmt.Sprintf(" table=%d", e.Table)
	}
	return msg + ": " + e.Err.Error()
}

func (e *OpError) Unwrap() error { return e.Err }

// opErr wraps err with operation context, preserving an existing *OpError
// rather than stacking a second layer of identical context.
func opErr(op string, xid uint32, table int, err error) error {
	if err == nil {
		return nil
	}
	var oe *OpError
	if errors.As(err, &oe) && oe.Op == op {
		return err
	}
	return &OpError{Op: op, XID: xid, Table: table, Err: err}
}

// SwitchError is an error the switch reported over the wire (a TypeError
// message). It is permanent: the client does not retry it.
type SwitchError struct {
	XID uint32
	Msg string
}

func (e *SwitchError) Error() string {
	return fmt.Sprintf("openflow: switch error (xid=%d): %s", e.XID, e.Msg)
}

// badFrame builds an ErrBadFrame-wrapped error with detail.
func badFrame(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadFrame, fmt.Sprintf(format, args...))
}

// unsupported builds an ErrUnsupported-wrapped error with detail.
func unsupported(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrUnsupported, fmt.Sprintf(format, args...))
}
