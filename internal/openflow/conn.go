package openflow

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// Conn frames messages over a net.Conn. Reads and writes are each
// serialized internally, so one reader and one writer goroutine may share
// a Conn.
type Conn struct {
	c  net.Conn
	rm sync.Mutex
	wm sync.Mutex
	rb []byte
}

// NewConn wraps a transport connection.
func NewConn(c net.Conn) *Conn { return &Conn{c: c} }

// Send encodes and writes one message.
func (c *Conn) Send(m *Message) error {
	frame, err := Encode(m)
	if err != nil {
		return err
	}
	c.wm.Lock()
	defer c.wm.Unlock()
	_, err = c.c.Write(frame)
	return err
}

// Recv reads and decodes the next message.
func (c *Conn) Recv() (*Message, error) {
	c.rm.Lock()
	defer c.rm.Unlock()
	var hdr [8]byte
	if _, err := io.ReadFull(c.c, hdr[:]); err != nil {
		return nil, err
	}
	length := int(binary.BigEndian.Uint16(hdr[2:]))
	if length < 8 || length > maxMessage {
		return nil, fmt.Errorf("openflow: bad frame length %d", length)
	}
	if cap(c.rb) < length {
		c.rb = make([]byte, length)
	}
	frame := c.rb[:length]
	copy(frame, hdr[:])
	if _, err := io.ReadFull(c.c, frame[8:]); err != nil {
		return nil, err
	}
	return Decode(frame)
}

// Close closes the transport.
func (c *Conn) Close() error { return c.c.Close() }
