package openflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Conn frames messages over a net.Conn. Reads and writes are each
// serialized internally, so one reader and one writer goroutine may share
// a Conn.
type Conn struct {
	c      net.Conn
	rm     sync.Mutex
	wm     sync.Mutex
	rb     []byte
	broken atomic.Bool
}

// NewConn wraps a transport connection.
func NewConn(c net.Conn) *Conn { return &Conn{c: c} }

// Send encodes and writes one message.
func (c *Conn) Send(m *Message) error {
	frame, err := Encode(m)
	if err != nil {
		return err
	}
	c.wm.Lock()
	defer c.wm.Unlock()
	if _, err := c.c.Write(frame); err != nil {
		return fmt.Errorf("openflow: send: %w: %w", ErrClosed, err)
	}
	return nil
}

// Recv reads and decodes the next message.
//
// Error classification matters for resilience: a decode failure of a
// self-consistent frame (errors.Is(err, ErrBadFrame) with Broken() false)
// leaves the stream positioned at the next frame, so a lenient endpoint
// may keep serving. A corrupt length field desynchronizes the stream —
// Recv marks the Conn broken and no further reads are meaningful. I/O
// failures wrap ErrClosed.
func (c *Conn) Recv() (*Message, error) {
	c.rm.Lock()
	defer c.rm.Unlock()
	if c.broken.Load() {
		return nil, opErr("recv", 0, -1, ErrClosed)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(c.c, hdr[:]); err != nil {
		c.broken.Store(true)
		return nil, fmt.Errorf("openflow: recv: %w: %w", ErrClosed, err)
	}
	length := int(binary.BigEndian.Uint16(hdr[2:]))
	if length < 8 || length > maxMessage {
		// The stream cannot be resynchronized past a corrupt length.
		c.broken.Store(true)
		return nil, badFrame("frame length %d out of range", length)
	}
	if cap(c.rb) < length {
		c.rb = make([]byte, length)
	}
	frame := c.rb[:length]
	copy(frame, hdr[:])
	if _, err := io.ReadFull(c.c, frame[8:]); err != nil {
		c.broken.Store(true)
		return nil, fmt.Errorf("openflow: recv: %w: %w", ErrClosed, err)
	}
	m, err := Decode(frame)
	if err != nil {
		// The frame was fully consumed: the stream stays usable. Recover
		// the xid from the header so lenient peers can address their
		// TypeError reply.
		return nil, opErr("recv", binary.BigEndian.Uint32(hdr[4:]), -1, err)
	}
	return m, nil
}

// Broken reports whether the receive stream has desynchronized (corrupt
// framing) or hit an I/O error; once broken, the connection is useless.
func (c *Conn) Broken() bool { return c.broken.Load() }

// Close closes the transport.
func (c *Conn) Close() error { return c.c.Close() }

// recvXID extracts the xid of a failed Recv, when one was recovered.
func recvXID(err error) uint32 {
	var oe *OpError
	if errors.As(err, &oe) {
		return oe.XID
	}
	return 0
}
