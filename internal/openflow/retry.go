package openflow

import (
	"context"
	"math"
	"math/rand"
	"time"
)

// RetryPolicy is the exponential-backoff schedule the client uses for RPC
// retries and reconnect attempts. The zero value disables retries; use
// DefaultRetryPolicy for the production schedule.
type RetryPolicy struct {
	// Base is the delay before the first retry.
	Base time.Duration
	// Max caps the grown delay (0 = uncapped).
	Max time.Duration
	// Multiplier grows the delay per attempt (values < 1 are treated
	// as 1, i.e. constant backoff).
	Multiplier float64
	// Jitter spreads each delay uniformly over
	// [d·(1-Jitter/2), d·(1+Jitter/2)) to decorrelate retry storms.
	// 0 disables jitter; values are clamped to [0, 1].
	Jitter float64
	// MaxRetries bounds retry attempts per operation (0 = no retries:
	// fail on the first error).
	MaxRetries int
	// Seed drives the jitter stream, making schedules reproducible.
	Seed int64
}

// DefaultRetryPolicy mirrors common controller practice: 20 ms doubling to
// a 1 s cap, ±25% jitter, 6 attempts.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Base: 20 * time.Millisecond, Max: time.Second, Multiplier: 2, Jitter: 0.25, MaxRetries: 6, Seed: 1}
}

// Delay returns the backoff before retry attempt (0-based). rng supplies
// the jitter stream and may be nil for a deterministic, jitter-free
// schedule.
func (p RetryPolicy) Delay(attempt int, rng *rand.Rand) time.Duration {
	if p.Base <= 0 {
		return 0
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 1
	}
	d := float64(p.Base) * math.Pow(mult, float64(attempt))
	if p.Max > 0 && d > float64(p.Max) {
		d = float64(p.Max)
	}
	j := p.Jitter
	if j < 0 {
		j = 0
	} else if j > 1 {
		j = 1
	}
	if j > 0 && rng != nil {
		d *= 1 - j/2 + j*rng.Float64()
	}
	return time.Duration(d)
}

// sleep waits d or until the context is done, whichever comes first.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
