package openflow

import (
	"math/rand"
	"testing"

	"manorm/internal/mat"
)

// TestDecodeNeverPanics hammers Decode with random bytes and random
// mutations of valid frames: every input must produce a message or an
// error, never a panic or a hang.
func TestDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))

	// Pure random frames.
	for i := 0; i < 5000; i++ {
		n := rng.Intn(64)
		b := make([]byte, n)
		rng.Read(b)
		// Make the length field self-consistent half the time so the
		// body parsers get exercised too.
		if n >= 8 && rng.Intn(2) == 0 {
			b[0] = Version
			b[2] = byte(n >> 8)
			b[3] = byte(n)
		}
		_, _ = Decode(b) // must not panic
	}

	// Mutations of a valid flow-mod frame.
	valid, err := Encode(&Message{Type: TypeFlowMod, XID: 7, Flow: &FlowMod{
		Command: FlowAdd,
		TableID: 1,
		Match: []MatchField{
			{Name: "ip_dst", Width: 32, Cell: mat.IPv4("192.0.2.1")},
		},
		Actions: []ActionField{{Name: "out", Width: 16, Value: 3}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		b := append([]byte(nil), valid...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
		}
		// Keep the header length consistent so mutations hit the body
		// parser rather than the frame check.
		b[2] = byte(len(b) >> 8)
		b[3] = byte(len(b))
		_, _ = Decode(b)
	}

	// Truncations of a valid stats frame.
	statsFrame, err := Encode(&Message{Type: TypeStatsReply, XID: 9, Stats: &Stats{TableID: 0, Counts: []uint64{1, 2, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(statsFrame); cut++ {
		b := append([]byte(nil), statsFrame[:cut]...)
		if len(b) >= 4 {
			b[2] = byte(len(b) >> 8)
			b[3] = byte(len(b))
		}
		_, _ = Decode(b)
	}
}

// TestEncodeDecodeRandomFlowMods round-trips randomized flow-mods.
func TestEncodeDecodeRandomFlowMods(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	names := []string{"ip_src", "ip_dst", "tcp_dst", "vlan", "in_port"}
	for i := 0; i < 500; i++ {
		f := &FlowMod{
			Command: FlowModCommand(1 + rng.Intn(3)),
			TableID: uint8(rng.Intn(8)),
		}
		for m := 0; m < rng.Intn(4); m++ {
			f.Match = append(f.Match, MatchField{
				Name:  names[rng.Intn(len(names))],
				Width: 32,
				Cell:  mat.Prefix(rng.Uint64(), uint8(rng.Intn(33)), 32),
			})
		}
		for a := 0; a < rng.Intn(3); a++ {
			f.Actions = append(f.Actions, ActionField{
				Name: "out", Width: 16, Value: uint64(rng.Intn(1 << 16)),
			})
		}
		frame, err := Encode(&Message{Type: TypeFlowMod, XID: uint32(i), Flow: f})
		if err != nil {
			t.Fatal(err)
		}
		back, err := Decode(frame)
		if err != nil {
			t.Fatalf("round trip %d: %v", i, err)
		}
		if len(back.Flow.Match) != len(f.Match) || len(back.Flow.Actions) != len(f.Actions) {
			t.Fatalf("round trip %d changed arity", i)
		}
		for j := range f.Match {
			if back.Flow.Match[j] != f.Match[j] {
				t.Fatalf("round trip %d changed match %d: %+v vs %+v", i, j, f.Match[j], back.Flow.Match[j])
			}
		}
	}
}
