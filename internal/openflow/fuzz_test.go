package openflow

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"reflect"
	"testing"

	"manorm/internal/faultconn"
	"manorm/internal/mat"
)

// TestDecodeNeverPanics hammers Decode with random bytes and random
// mutations of valid frames: every input must produce a message or an
// error, never a panic or a hang.
func TestDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))

	// Pure random frames.
	for i := 0; i < 5000; i++ {
		n := rng.Intn(64)
		b := make([]byte, n)
		rng.Read(b)
		// Make the length field self-consistent half the time so the
		// body parsers get exercised too.
		if n >= 8 && rng.Intn(2) == 0 {
			b[0] = Version
			b[2] = byte(n >> 8)
			b[3] = byte(n)
		}
		_, _ = Decode(b) // must not panic
	}

	// Mutations of a valid flow-mod frame.
	valid, err := Encode(&Message{Type: TypeFlowMod, XID: 7, Flow: &FlowMod{
		Command: FlowAdd,
		TableID: 1,
		Match: []MatchField{
			{Name: "ip_dst", Width: 32, Cell: mat.IPv4("192.0.2.1")},
		},
		Actions: []ActionField{{Name: "out", Width: 16, Value: 3}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		b := append([]byte(nil), valid...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
		}
		// Keep the header length consistent so mutations hit the body
		// parser rather than the frame check.
		b[2] = byte(len(b) >> 8)
		b[3] = byte(len(b))
		_, _ = Decode(b)
	}

	// Truncations of a valid stats frame.
	statsFrame, err := Encode(&Message{Type: TypeStatsReply, XID: 9, Stats: &Stats{TableID: 0, Counts: []uint64{1, 2, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(statsFrame); cut++ {
		b := append([]byte(nil), statsFrame[:cut]...)
		if len(b) >= 4 {
			b[2] = byte(len(b) >> 8)
			b[3] = byte(len(b))
		}
		_, _ = Decode(b)
	}
}

// chunkedConn is a net.Conn stub whose Read returns at most a random
// 1..maxChunk bytes per call, splitting frames across arbitrary
// boundaries the way a congested TCP stream does.
type chunkedConn struct {
	net.Conn
	buf      []byte
	rng      *rand.Rand
	maxChunk int
}

func (c *chunkedConn) Read(p []byte) (int, error) {
	if len(c.buf) == 0 {
		return 0, io.EOF
	}
	n := 1 + c.rng.Intn(c.maxChunk)
	if n > len(c.buf) {
		n = len(c.buf)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, c.buf[:n])
	c.buf = c.buf[n:]
	return n, nil
}

func (c *chunkedConn) Write(p []byte) (int, error) { return len(p), nil }
func (c *chunkedConn) Close() error                { return nil }

// TestRecvReassemblesPartialReads streams a batch of valid frames through
// a transport that fragments them at random byte boundaries; Recv must
// reassemble every message intact regardless of where the cuts land.
func TestRecvReassemblesPartialReads(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		msgs := []*Message{
			{Type: TypeHello, XID: 1},
			{Type: TypeEchoRequest, XID: 2, Payload: []byte("fragmented payload")},
			{Type: TypeFlowMod, XID: 3, Flow: &FlowMod{
				Command: FlowAdd, TableID: 1,
				Match:   []MatchField{{Name: "ip_dst", Width: 32, Cell: mat.IPv4("192.0.2.9")}},
				Actions: []ActionField{{Name: "out", Width: 16, Value: 5}},
			}},
			{Type: TypeBarrierReply, XID: 4, Payload: appendAckXIDs(nil, []uint32{7, 8, 9})},
			{Type: TypeStatsReply, XID: 5, Stats: &Stats{TableID: 2, Counts: []uint64{10, 20}}},
		}
		var stream []byte
		for _, m := range msgs {
			frame, err := Encode(m)
			if err != nil {
				t.Fatal(err)
			}
			stream = append(stream, frame...)
		}
		c := NewConn(&chunkedConn{buf: stream, rng: rng, maxChunk: 1 + rng.Intn(5)})
		for i, want := range msgs {
			got, err := c.Recv()
			if err != nil {
				t.Fatalf("trial %d: recv %d: %v", trial, i, err)
			}
			if got.Type != want.Type || got.XID != want.XID {
				t.Fatalf("trial %d: recv %d: got %s/%d, want %s/%d",
					trial, i, got.Type, got.XID, want.Type, want.XID)
			}
			if !reflect.DeepEqual(got.Payload, want.Payload) && len(want.Payload) > 0 {
				t.Fatalf("trial %d: recv %d: payload mismatch", trial, i)
			}
		}
		// The stream is exhausted: the next Recv fails with a channel
		// error, not a hang or partial message.
		if _, err := c.Recv(); !errors.Is(err, ErrClosed) {
			t.Fatalf("trial %d: recv at EOF: err = %v, want ErrClosed", trial, err)
		}
	}
}

// TestRecvRecoverableVsFatal checks the error taxonomy Recv promises: a
// self-consistent frame with an undecodable body is recoverable (the next
// frame still parses), while a corrupt length field breaks the stream.
func TestRecvRecoverableVsFatal(t *testing.T) {
	good, err := Encode(&Message{Type: TypeEchoRequest, XID: 11, Payload: []byte("ok")})
	if err != nil {
		t.Fatal(err)
	}
	// A well-framed message of an unknown type: consumed whole, stream
	// stays synchronized.
	unknown := []byte{Version, 200, 0, 8, 0, 0, 0, 42}
	c := NewConn(&chunkedConn{buf: append(append([]byte(nil), unknown...), good...), rng: rand.New(rand.NewSource(1)), maxChunk: 3})
	_, err = c.Recv()
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("unknown type: err = %v, want ErrUnsupported", err)
	}
	if c.Broken() {
		t.Fatalf("recoverable decode failure marked the conn broken")
	}
	if recvXID(err) != 42 {
		t.Fatalf("recovered xid = %d, want 42", recvXID(err))
	}
	m, err := c.Recv()
	if err != nil || m.XID != 11 {
		t.Fatalf("stream not synchronized after recoverable failure: %v, %+v", err, m)
	}

	// A corrupt length field cannot be resynchronized: fatal.
	c = NewConn(&chunkedConn{buf: []byte{Version, byte(TypeHello), 0, 3, 0, 0, 0, 1}, rng: rand.New(rand.NewSource(1)), maxChunk: 8})
	_, err = c.Recv()
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("corrupt length: err = %v, want ErrBadFrame", err)
	}
	if !c.Broken() {
		t.Fatalf("corrupt length did not mark the conn broken")
	}
	if _, err := c.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv on broken conn: err = %v, want ErrClosed", err)
	}
}

// TestEncodeDecodeRandomFlowMods round-trips randomized flow-mods.
func TestEncodeDecodeRandomFlowMods(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	names := []string{"ip_src", "ip_dst", "tcp_dst", "vlan", "in_port"}
	for i := 0; i < 500; i++ {
		f := &FlowMod{
			Command: FlowModCommand(1 + rng.Intn(3)),
			TableID: uint8(rng.Intn(8)),
		}
		for m := 0; m < rng.Intn(4); m++ {
			f.Match = append(f.Match, MatchField{
				Name:  names[rng.Intn(len(names))],
				Width: 32,
				Cell:  mat.Prefix(rng.Uint64(), uint8(rng.Intn(33)), 32),
			})
		}
		for a := 0; a < rng.Intn(3); a++ {
			f.Actions = append(f.Actions, ActionField{
				Name: "out", Width: 16, Value: uint64(rng.Intn(1 << 16)),
			})
		}
		frame, err := Encode(&Message{Type: TypeFlowMod, XID: uint32(i), Flow: f})
		if err != nil {
			t.Fatal(err)
		}
		back, err := Decode(frame)
		if err != nil {
			t.Fatalf("round trip %d: %v", i, err)
		}
		if len(back.Flow.Match) != len(f.Match) || len(back.Flow.Actions) != len(f.Actions) {
			t.Fatalf("round trip %d changed arity", i)
		}
		for j := range f.Match {
			if back.Flow.Match[j] != f.Match[j] {
				t.Fatalf("round trip %d changed match %d: %+v vs %+v", i, j, f.Match[j], back.Flow.Match[j])
			}
		}
	}
}

// TestCutAtFrameBoundaryVsMidFrame pins the forced-cut semantics the
// fault experiments rely on: a cut landing on a frame boundary delivers
// every earlier frame intact and nothing of the cut frame, while a
// mid-frame cut delivers a truncated prefix whose byte count is surfaced
// (faultconn partial-write stats) — in both cases the receiver decodes
// exactly the complete frames and then fails with a channel error, never
// a phantom message assembled from torn bytes.
func TestCutAtFrameBoundaryVsMidFrame(t *testing.T) {
	frames := make([]*Message, 5)
	for i := range frames {
		frames[i] = &Message{Type: TypeEchoRequest, XID: uint32(i + 1), Payload: []byte("payload-0123456789")}
	}
	for _, midFrame := range []bool{false, true} {
		a, b := net.Pipe()
		fc := faultconn.Wrap(a, faultconn.Config{
			Seed:           7,
			CutAfterWrites: 4, // the 4th frame is cut
			CutMidFrame:    midFrame,
		})
		sender := NewConn(fc)
		recv := NewConn(b)

		sendErr := make(chan error, 1)
		go func() {
			for _, m := range frames {
				if err := sender.Send(m); err != nil {
					sendErr <- err
					return
				}
			}
			sendErr <- nil
		}()

		for i := 0; i < 3; i++ {
			m, err := recv.Recv()
			if err != nil {
				t.Fatalf("midFrame=%v: pre-cut frame %d: %v", midFrame, i, err)
			}
			if m.XID != uint32(i+1) || string(m.Payload) != "payload-0123456789" {
				t.Fatalf("midFrame=%v: pre-cut frame %d corrupted: %+v", midFrame, i, m)
			}
		}
		// The 4th frame was cut: whatever arrives next must be an error,
		// never a decoded message built from a torn prefix.
		if m, err := recv.Recv(); err == nil {
			t.Fatalf("midFrame=%v: received phantom frame %+v past the cut", midFrame, m)
		} else if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrBadFrame) {
			t.Fatalf("midFrame=%v: post-cut err = %v, want channel error", midFrame, err)
		}
		if err := <-sendErr; !errors.Is(err, faultconn.ErrInjectedCut) {
			t.Fatalf("midFrame=%v: sender err = %v, want ErrInjectedCut", midFrame, err)
		}

		st := fc.Stats()
		if midFrame {
			if st.PartialWrites() != 1 || st.PartialWriteBytes() == 0 {
				t.Errorf("mid-frame cut not surfaced: partials=%d bytes=%d",
					st.PartialWrites(), st.PartialWriteBytes())
			}
		} else {
			if st.PartialWrites() != 0 || st.PartialWriteBytes() != 0 {
				t.Errorf("boundary cut reported partial bytes: partials=%d bytes=%d",
					st.PartialWrites(), st.PartialWriteBytes())
			}
		}
		a.Close()
		b.Close()
	}
}
