package difftest

import (
	"errors"
	"fmt"
	"strings"

	"manorm/internal/core"
	"manorm/internal/dataplane"
	"manorm/internal/fdd"
	"manorm/internal/mat"
	"manorm/internal/netkat"
	"manorm/internal/packet"
	"manorm/internal/switches"
	"manorm/internal/telemetry"
)

// mutTargets maps the generator's rewriting actions onto the canonical
// header field the dataplane writes them to (internal/dataplane's action
// lowering); the mutation check compares those header fields against the
// action attributes the relational semantics assigned.
var mutTargets = map[string]string{
	"mod_vlan": packet.FieldVLAN,
	"mod_smac": packet.FieldEthSrc,
	"mod_dmac": packet.FieldEthDst,
}

// truth is the relational ground truth for one packet: the universal
// table's observable output.
type truth struct {
	obs  mat.Record
	drop bool
	port uint16
}

// Execute runs one program differentially: it enumerates every
// representation (core.Variants, plus the Fig. 3 pipeline for caveat
// programs), establishes ground truth by evaluating the universal table
// relationally on every packet, and then cross-checks
//
//   - every variant's relational evaluation, packet by packet;
//   - every variant against the universal table under the finite-domain
//     NetKAT oracle (exhaustively where the joint domain is small enough,
//     sampled otherwise);
//   - every variant compiled to the raw dataplane: verdicts, header
//     mutations, and the ProcessExplain witness's consistency;
//   - every variant installed on every switch model, batch-processed
//     twice so the second, cache-warm pass validates flow-cache replay.
//
// The compiled layers additionally run a fused twin of every fusable
// variant (the pipeline re-compiled through internal/fdd into a single
// first-match decision structure), so fusion is cross-checked against
// the same relational ground truth as the interpreted datapaths.
//
// The returned divergences are empty for a healthy program. An error
// means the harness itself could not run (nil table, unknown model) —
// never that the program diverged.
func Execute(p *Program, cfg ExecConfig) ([]Divergence, error) {
	if p == nil || p.Table == nil {
		return nil, errors.New("difftest: nil program")
	}
	if len(p.Batches) > 0 {
		return ExecuteConfluence(p, cfg)
	}
	cfg = cfg.withDefaults()
	var divs []Divergence
	full := func() bool { return len(divs) >= cfg.MaxDivergences }
	add := func(kind, variant, model string, pkt int, format string, args ...any) {
		if !full() {
			divs = append(divs, Divergence{
				Kind: kind, Variant: variant, Model: model, Packet: pkt,
				Detail: fmt.Sprintf(format, args...),
			})
		}
	}

	vs, err := core.Variants(p.Table, cfg.Target)
	if err != nil {
		add(KindConstruct, "variants", "", -1, "%v", err)
		return divs, nil
	}
	if p.Caveat {
		cp, err := CaveatPipeline(p.Table)
		if err != nil {
			add(KindConstruct, "fig3-caveat", "", -1, "%v", err)
			return divs, nil
		}
		vs = append(vs, core.Variant{Name: "fig3-caveat", Pipeline: cp})
	}
	// Fused twins: every variant re-entered through the FDD fusion path
	// (rep "fused"). Fusion is a compilation hint — the relational
	// semantics and the oracle ignore it — so the twins join only the
	// compiled layers below. Pipelines fusion declines (a matched field
	// whose written value analysis cannot track, stage cycles) are
	// skipped: ErrUnfusable is a stated capability limit, not a
	// divergence. Any other fusion failure is a construct divergence.
	compiled := vs
	for _, v := range vs {
		if _, err := fdd.Fuse(v.Pipeline); err != nil {
			if !fdd.IsUnfusable(err) {
				add(KindConstruct, v.Name+"+fused", "", -1, "fuse: %v", err)
			}
			continue
		}
		tw := *v.Pipeline
		tw.Name = v.Pipeline.Name + "+fused"
		tw.Fused = true
		compiled = append(compiled, core.Variant{Name: v.Name + "+fused", Pipeline: &tw})
	}

	uni := vs[0].Pipeline
	hasOut := p.Table.Schema.Index("out") >= 0

	// Inputs. In canonical mode the batch is p.Packets, marshaled once to
	// frames for the compiled layers. In schema mode the batch is raw
	// frames and the program's parse graph is compiled once; the record the
	// relational layers see is exactly the decoded FieldView — so a codec
	// or parser bug surfaces as a divergence between the relational and
	// compiled layers, which both consume the same bytes.
	n := p.NumInputs()
	recs := make([]mat.Record, n)
	var frames [][]byte
	var dec *packet.Decoder
	if p.SchemaMode() {
		dec, err = p.Graph.Compile()
		if err != nil {
			return nil, fmt.Errorf("difftest: compile parse graph: %w", err)
		}
		frames = p.Frames
		view := dec.NewView()
		for i, f := range frames {
			if err := dec.ParseInto(view, f); err != nil {
				return nil, fmt.Errorf("difftest: parse frame %d: %w", i, err)
			}
			recs[i] = view.Record()
		}
	} else {
		frames = make([][]byte, n)
		for i, pkt := range p.Packets {
			recs[i] = pkt.Record()
			frames[i] = pkt.Marshal(nil)
		}
	}

	// Ground truth: the universal 1NF table under the relational
	// semantics. If even that is ambiguous the program itself is broken.
	expected := make([]truth, n)
	for i := range recs {
		out, err := uni.Eval(recs[i])
		if err != nil {
			add(KindEval, "universal", "", i, "%v", err)
			return divs, nil
		}
		expected[i] = truth{obs: out.Observable(), drop: out[mat.DropAttr] == 1, port: uint16(out["out"])}
	}

	// Relational cross-check of every other representation.
	for _, v := range vs[1:] {
		for i := range recs {
			out, err := v.Pipeline.Eval(recs[i])
			if err != nil {
				add(KindEval, v.Name, "", i, "%v", err)
				break
			}
			if !out.Observable().Equal(expected[i].obs) {
				add(KindRelational, v.Name, "", i, "got %v, want %v", out.Observable(), expected[i].obs)
				break
			}
		}
		if full() {
			return divs, nil
		}
	}

	// NetKAT oracle: exhaustive over the joint probe domain where widths
	// permit, sampled otherwise. This covers inputs the packet batch
	// missed.
	for _, v := range vs[1:] {
		limit := cfg.OracleSample
		if s := netkat.DomainOfPipelines(uni, v.Pipeline).Size(); s <= cfg.OracleExhaustive {
			limit = cfg.OracleExhaustive
		}
		if limit <= 0 {
			continue
		}
		cex, _, err := netkat.EquivalentPipelines(uni, v.Pipeline, limit)
		if err != nil {
			add(KindEval, v.Name, "", -1, "oracle probe: %v", err)
		} else if cex != nil {
			add(KindOracle, v.Name, "", -1, "%v", cex.Error())
		}
		if full() {
			return divs, nil
		}
	}

	// Raw dataplane: verdicts, witness consistency, header mutations.
	// Every executor reparses its own copy of the frame bytes, as a real
	// datapath would.
	dpOpts := []dataplane.Option(nil)
	if dec != nil {
		dpOpts = append(dpOpts, dataplane.WithSchema(dec.Schema()))
	}
	arena := dataplane.NewFrameBatch(dec)
	fout := make([]dataplane.Verdict, len(frames))
	for _, v := range compiled {
		dp, err := dataplane.Compile(v.Pipeline, dataplane.AutoTemplates, dpOpts...)
		if err != nil {
			add(KindConstruct, v.Name, "dataplane", -1, "compile: %v", err)
			continue
		}
		ctx := dp.NewCtx()
		var scratch packet.Packet
		var view *packet.FieldView
		if dec != nil {
			view = dec.NewView()
		}
		for i := range frames {
			var verd dataplane.Verdict
			var wit *telemetry.Trace
			if view != nil {
				if err := dec.ParseInto(view, frames[i]); err != nil {
					return nil, fmt.Errorf("difftest: reparse frame %d: %w", i, err)
				}
				verd, wit, err = dp.ProcessExplainView(view, ctx)
			} else {
				if err := scratch.ParseInto(frames[i]); err != nil {
					return nil, fmt.Errorf("difftest: reparse frame %d: %w", i, err)
				}
				verd, wit, err = dp.ProcessExplain(&scratch, ctx)
			}
			if err != nil {
				add(KindEval, v.Name, "dataplane", i, "%v", err)
				break
			}
			exp := expected[i]
			if verd.Drop != exp.drop || (!exp.drop && hasOut && verd.Port != exp.port) {
				add(KindVerdict, v.Name, "dataplane", i,
					"verdict {drop:%v port:%d}, want {drop:%v port:%d}", verd.Drop, verd.Port, exp.drop, exp.port)
				break
			}
			if wit.Drop != verd.Drop || wit.Port != verd.Port ||
				wit.Tables != verd.Tables || len(wit.Stages) != verd.Tables {
				add(KindWitness, v.Name, "dataplane", i,
					"witness {drop:%v port:%d tables:%d stages:%d} inconsistent with verdict {drop:%v port:%d tables:%d}",
					wit.Drop, wit.Port, wit.Tables, len(wit.Stages), verd.Drop, verd.Port, verd.Tables)
				break
			}
			if !exp.drop {
				var d string
				if view != nil {
					d = checkViewMutations(p.Table.Schema, exp.obs, recs[i], view)
				} else {
					d = checkMutations(p.Table.Schema, exp.obs, p.Packets[i], &scratch)
				}
				if d != "" {
					add(KindMutation, v.Name, "dataplane", i, "%s", d)
					break
				}
			}
		}
		// Frame-batch ingest cross-check: the same frames through the
		// zero-copy wire surface must replay the struct-path verdicts.
		// (The switch-model pass below already IS the frames path per
		// model; this pins the raw ProcessFrames entry point itself.)
		if err := dp.ProcessFrames(frames, arena, fout, nil); err != nil {
			add(KindEval, v.Name, "dataplane-frames", -1, "%v", err)
		} else {
			for i := range frames {
				exp := expected[i]
				if fout[i].Drop != exp.drop || (!exp.drop && hasOut && fout[i].Port != exp.port) {
					add(KindVerdict, v.Name, "dataplane-frames", i,
						"frames-path verdict {drop:%v port:%d}, want {drop:%v port:%d}",
						fout[i].Drop, fout[i].Port, exp.drop, exp.port)
					break
				}
			}
		}
		if full() {
			return divs, nil
		}
	}

	// Switch models: install every variant, process the batch cold, then
	// again warm — the second pass runs out of the models' flow caches
	// and must replay identical verdicts.
	out1 := make([]dataplane.Verdict, len(frames))
	out2 := make([]dataplane.Verdict, len(frames))
	swOpts := []switches.Option(nil)
	if dec != nil {
		swOpts = append(swOpts, switches.WithSchema(dec))
	}
	for _, model := range cfg.Models {
		sw, err := switches.New(model, swOpts...)
		if err != nil {
			return nil, err
		}
		for _, v := range compiled {
			if err := sw.Install(v.Pipeline); err != nil {
				add(KindConstruct, v.Name, model, -1, "install: %v", err)
				continue
			}
			w := sw.NewWorker()
			if err := w.ProcessBatch(frames, out1); err != nil {
				add(KindEval, v.Name, model, -1, "cold batch: %v", err)
				continue
			}
			if err := w.ProcessBatch(frames, out2); err != nil {
				add(KindEval, v.Name, model, -1, "warm batch: %v", err)
				continue
			}
			for i := range frames {
				exp := expected[i]
				if out1[i].Drop != exp.drop || (!exp.drop && hasOut && out1[i].Port != exp.port) {
					add(KindVerdict, v.Name, model, i,
						"verdict {drop:%v port:%d}, want {drop:%v port:%d}", out1[i].Drop, out1[i].Port, exp.drop, exp.port)
					break
				}
				if out1[i].Drop != out2[i].Drop || out1[i].Port != out2[i].Port {
					add(KindCache, v.Name, model, i,
						"cold {drop:%v port:%d} vs warm {drop:%v port:%d}", out1[i].Drop, out1[i].Port, out2[i].Drop, out2[i].Port)
					break
				}
			}
			if full() {
				return divs, nil
			}
		}
	}
	return divs, nil
}

// checkMutations compares the dataplane's final header fields against the
// relational record: for every rewriting action attribute in the schema
// the mapped header field must equal the value the relational semantics
// assigned (or the original value if the relational run never wrote it).
// It returns a description of the first mismatch, or "".
func checkMutations(sch mat.Schema, obs mat.Record, orig *packet.Packet, got *packet.Packet) string {
	for _, ai := range sch.Actions() {
		name := sch[ai].Name
		fldName, ok := mutTargets[name]
		if !ok {
			continue
		}
		want, wrote := obs[name]
		if !wrote {
			want, _ = orig.Field(fldName)
		}
		have, _ := got.Field(fldName)
		if have != want {
			return fmt.Sprintf("%s: header %s = %d, want %d", name, fldName, have, want)
		}
	}
	return ""
}

// checkViewMutations is checkMutations for schema mode. The canonical
// mutTargets map is replaced by the naming convention the schema
// generators follow: any action attribute "mod_<field>" where <field> is
// a field of the view's schema must leave that field equal to the value
// the relational semantics assigned — or its originally parsed value when
// the relational run never wrote it.
func checkViewMutations(sch mat.Schema, obs mat.Record, orig mat.Record, got *packet.FieldView) string {
	for _, ai := range sch.Actions() {
		name := sch[ai].Name
		fld, isMod := strings.CutPrefix(name, "mod_")
		if !isMod || got.Schema().Slot(fld) < 0 {
			continue
		}
		want, wrote := obs[name]
		if !wrote {
			want = orig[fld]
		}
		have, _ := got.GetName(fld)
		if have != want {
			return fmt.Sprintf("%s: field %s = %#x, want %#x", name, fld, have, want)
		}
	}
	return ""
}
