package difftest

import (
	"os"
	"path/filepath"
	"testing"
)

// fuzzExecConfig trades oracle depth for iteration rate — the native fuzz
// engine wants many executions per second; mafuzz runs the deeper config.
func fuzzExecConfig() ExecConfig {
	cfg := DefaultExecConfig()
	cfg.OracleExhaustive = 512
	cfg.OracleSample = 32
	return cfg
}

// FuzzGenerated is the native differential fuzz target over generator
// seeds: every seed must yield a program that executes with zero
// divergences (Theorem 1 as a fuzz property). `go test` runs just the
// seed corpus below; `go test -fuzz=FuzzGenerated` explores further.
func FuzzGenerated(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	// Seeds recovered from committed reproducers join the corpus too, so
	// regressions around previously interesting programs are revisited.
	if files, err := CorpusFiles(filepath.Join("testdata", "corpus")); err == nil {
		for _, path := range files {
			if p, _, err := ReadCorpus(path); err == nil && p.Seed != 0 {
				f.Add(p.Seed)
			}
		}
	}
	cfg := fuzzExecConfig()
	f.Fuzz(func(t *testing.T, seed int64) {
		p := Generate(seed, DefaultGenConfig())
		divs, err := Execute(p, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(divs) > 0 {
			t.Fatalf("seed %d diverged: %v\n%s", seed, divs, p.Table)
		}
	})
}

// FuzzCorpusLoader fuzzes the reproducer file format end to end: no
// input — however mangled — may panic the loader or the executor. Mutated
// programs may legitimately diverge (a mutation can break 1NF); the
// property here is robustness, not equivalence.
func FuzzCorpusLoader(f *testing.F) {
	if files, err := CorpusFiles(filepath.Join("testdata", "corpus")); err == nil {
		for _, path := range files {
			if b, err := os.ReadFile(path); err == nil {
				f.Add(b)
			}
		}
	}
	f.Add([]byte(`{"table":{"name":"t","attrs":[{"name":"vlan","kind":"field","width":12}],"entries":[]},"frames":[]}`))
	cfg := fuzzExecConfig()
	cfg.Models = []string{"eswitch"} // keep the robustness target fast
	f.Fuzz(func(t *testing.T, data []byte) {
		p, _, err := UnmarshalCorpus(data)
		if err != nil {
			return
		}
		if p.Table.Validate() != nil || len(p.Table.Schema) > 12 || len(p.Table.Entries) > 64 {
			return
		}
		if _, err := Execute(p, cfg); err != nil {
			t.Skipf("harness declined: %v", err)
		}
	})
}
