package difftest

import (
	"strings"
	"testing"
)

// TestGenerateSchemaClean: schema-mode generated programs are clean by
// construction — every representation, compiled through the programmable
// parser, must agree on invented header schemas exactly as on the
// canonical one.
func TestGenerateSchemaClean(t *testing.T) {
	cfg := fuzzExecConfig()
	for seed := int64(1); seed <= 6; seed++ {
		p := GenerateSchema(seed, DefaultGenConfig())
		divs, err := Execute(p, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(divs) > 0 {
			t.Fatalf("seed %d diverged: %v\n%s", seed, divs, p.Table)
		}
	}
}

// TestGenerateSchemaDeterministic: the same seed must reproduce the same
// schema, table and frame bytes — replayability is what makes a corpus
// seed meaningful.
func TestGenerateSchemaDeterministic(t *testing.T) {
	a := GenerateSchema(42, DefaultGenConfig())
	b := GenerateSchema(42, DefaultGenConfig())
	if !a.Table.Equal(b.Table) {
		t.Fatalf("tables differ across identical seeds:\n%s\n%s", a.Table, b.Table)
	}
	if len(a.Frames) != len(b.Frames) {
		t.Fatalf("frame counts differ: %d vs %d", len(a.Frames), len(b.Frames))
	}
	for i := range a.Frames {
		if string(a.Frames[i]) != string(b.Frames[i]) {
			t.Fatalf("frame %d differs across identical seeds", i)
		}
	}
}

// TestSchemaHazardSignature: the planted schema hazard must reproduce the
// set-field/rematch signature through the programmable parser — relational
// and oracle layers clean, compiled layers diverging on the verdict in the
// rematch decomposition.
func TestSchemaHazardSignature(t *testing.T) {
	p, err := PlantSchemaHazard(5)
	if err != nil {
		t.Fatal(err)
	}
	if !p.SchemaMode() {
		t.Fatal("planted schema hazard is not in schema mode")
	}
	divs, err := Execute(p, DefaultExecConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(divs) == 0 {
		t.Fatalf("schema hazard program did not diverge:\n%s", p.Table)
	}
	for _, d := range divs {
		if d.Kind != KindVerdict {
			t.Fatalf("expected only verdict divergences, got %s", d)
		}
		if d.Model == "" {
			t.Fatalf("hazard divergence at the relational/oracle layer: %s", d)
		}
		if !strings.Contains(d.Variant, "rematch") && !strings.Contains(d.Variant, "const") {
			t.Fatalf("divergence outside the rematch/const decomposition: %s", d)
		}
	}
}

// TestSchemaHazardShrinks: Shrink must preserve the schema hazard's
// verdict divergence while keeping the program replayable (graph intact,
// at least one frame).
func TestSchemaHazardShrinks(t *testing.T) {
	p, err := PlantSchemaHazard(5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fuzzExecConfig()
	s := Shrink(p, cfg)
	if s.Graph == nil || len(s.Frames) == 0 {
		t.Fatalf("shrink lost schema mode: graph=%v frames=%d", s.Graph != nil, len(s.Frames))
	}
	if s.Size() > p.Size() {
		t.Fatalf("shrink grew the program: %d -> %d", p.Size(), s.Size())
	}
	divs, err := Execute(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range divs {
		if d.Kind == KindVerdict {
			found = true
		}
	}
	if !found {
		t.Fatalf("shrunk program lost the verdict divergence: %v", divs)
	}
}

// TestSchemaCorpusRoundTrip: a schema-mode reproducer must carry its parse
// graph through the JSON corpus format and replay byte-identically.
func TestSchemaCorpusRoundTrip(t *testing.T) {
	p := GenerateSchema(9, DefaultGenConfig())
	b, err := MarshalCorpus(p, KindVerdict)
	if err != nil {
		t.Fatal(err)
	}
	q, kind, err := UnmarshalCorpus(b)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindVerdict {
		t.Fatalf("kind %q, want %q", kind, KindVerdict)
	}
	if !q.SchemaMode() {
		t.Fatal("schema mode lost across round trip")
	}
	if q.Graph.Schema.Name != p.Graph.Schema.Name {
		t.Fatalf("schema name %q, want %q", q.Graph.Schema.Name, p.Graph.Schema.Name)
	}
	if !q.Table.Equal(p.Table) {
		t.Fatalf("table changed across round trip:\n%s\n%s", p.Table, q.Table)
	}
	if q.Table.Provenance != p.Table.Provenance {
		t.Fatalf("provenance %q, want %q", q.Table.Provenance, p.Table.Provenance)
	}
	if len(q.Frames) != len(p.Frames) {
		t.Fatalf("frame count %d, want %d", len(q.Frames), len(p.Frames))
	}
	for i := range p.Frames {
		if string(q.Frames[i]) != string(p.Frames[i]) {
			t.Fatalf("frame %d changed across round trip", i)
		}
	}
	divs, err := Execute(q, fuzzExecConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(divs) > 0 {
		t.Fatalf("round-tripped clean program diverged: %v", divs)
	}
}

// FuzzSchemaGenerated is the schema-mode twin of FuzzGenerated: every
// seed invents a fresh header schema and parse graph, and the resulting
// program must execute with zero divergences — Theorem 1 as a fuzz
// property over protocol-independent programs.
func FuzzSchemaGenerated(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	cfg := fuzzExecConfig()
	f.Fuzz(func(t *testing.T, seed int64) {
		p := GenerateSchema(seed, DefaultGenConfig())
		divs, err := Execute(p, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(divs) > 0 {
			t.Fatalf("seed %d diverged: %v\n%s", seed, divs, p.Table)
		}
	})
}
