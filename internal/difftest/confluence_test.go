package difftest

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestPlantConfluencePairDiverges: the planted racing pair must come back
// from the full Execute dispatch as a non-confluent divergence — the
// replayable kind — and never as a verifier disagreement.
func TestPlantConfluencePairDiverges(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		p := PlantConfluencePair(seed)
		divs, err := Execute(p, DefaultExecConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var nonConfluent bool
		for _, d := range divs {
			if d.Kind == KindConfluence {
				t.Fatalf("seed %d: verifier disagreement on planted pair: %s", seed, d)
			}
			if d.Kind == KindNonConfluent {
				nonConfluent = true
			}
		}
		if !nonConfluent {
			t.Fatalf("seed %d: planted pair not flagged non-confluent: %v", seed, divs)
		}
	}
}

// TestConfluenceFuzzAgreement is the in-tree slice of the confluence fuzz
// loop: across seeded generated batch pairs the verifier must never
// disagree with brute-force interleaving (KindNonConfluent is expected
// for genuinely racing updates; KindConfluence never is).
func TestConfluenceFuzzAgreement(t *testing.T) {
	cfg := DefaultExecConfig()
	var confluent, diverging int
	for seed := int64(1); seed <= 30; seed++ {
		p := GenerateConcurrent(seed, DefaultGenConfig())
		divs, err := Execute(p, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(divs) == 0 {
			confluent++
			continue
		}
		for _, d := range divs {
			if d.Kind == KindConfluence {
				t.Fatalf("seed %d: verifier vs brute-force disagreement: %s", seed, d)
			}
		}
		diverging++
	}
	if confluent == 0 || diverging == 0 {
		t.Fatalf("generator not exercising both outcomes: %d confluent, %d diverging", confluent, diverging)
	}
}

func TestGenerateConcurrentDeterministic(t *testing.T) {
	a := GenerateConcurrent(11, DefaultGenConfig())
	b := GenerateConcurrent(11, DefaultGenConfig())
	if !reflect.DeepEqual(a.Batches, b.Batches) {
		t.Fatal("GenerateConcurrent not deterministic for a fixed seed")
	}
	if len(a.Batches) != 2 {
		t.Fatalf("expected 2 batches, got %d", len(a.Batches))
	}
	for bi, batch := range a.Batches {
		if len(batch) == 0 {
			t.Fatalf("batch %d empty", bi)
		}
	}
}

// TestConfluenceCorpusRoundTrip: batches survive the corpus codec and the
// written reproducer replays with its recorded kind.
func TestConfluenceCorpusRoundTrip(t *testing.T) {
	p := PlantConfluencePair(3)
	b, err := MarshalCorpus(p, KindNonConfluent)
	if err != nil {
		t.Fatal(err)
	}
	q, kind, err := UnmarshalCorpus(b)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindNonConfluent {
		t.Fatalf("kind = %q, want %q", kind, KindNonConfluent)
	}
	if !reflect.DeepEqual(p.Batches, q.Batches) {
		t.Fatal("batches did not round-trip through the corpus codec")
	}

	dir := t.TempDir()
	path, err := WriteCorpus(dir, p, KindNonConfluent)
	if err != nil {
		t.Fatal(err)
	}
	divs, kind, err := Replay(path, DefaultExecConfig())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range divs {
		if d.Kind == kind {
			found = true
		}
	}
	if !found {
		t.Fatalf("replayed reproducer lost its %q divergence: %v", kind, divs)
	}
	_ = os.Remove(filepath.Join(dir, filepath.Base(path)))
}

// TestShrinkConfluencePair: shrinking a diverging confluence program
// keeps the divergence and never leaves fewer than two batches.
func TestShrinkConfluencePair(t *testing.T) {
	p := PlantConfluencePair(3)
	s := Shrink(p, DefaultExecConfig())
	if len(s.Batches) < 2 {
		t.Fatalf("shrink left %d batches", len(s.Batches))
	}
	divs, err := Execute(s, DefaultExecConfig())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range divs {
		if d.Kind == KindNonConfluent {
			found = true
		}
	}
	if !found {
		t.Fatalf("shrunk program lost the non-confluent divergence: %v", divs)
	}
	if s.Size() > p.Size() {
		t.Fatalf("shrink grew the program: %d > %d", s.Size(), p.Size())
	}
}
