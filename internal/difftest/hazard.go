package difftest

import (
	"fmt"
	"math/rand"

	"manorm/internal/mat"
	"manorm/internal/packet"
)

// PlantRematchHazard builds a program exposing a second caveat the
// differential harness found beyond the paper's Fig. 3: the rematch join
// is dep-first, so the dependency stage applies its rewriting actions
// *before* the rest stage re-matches the dependency's LHS fields — and a
// real datapath re-matches the rewritten header, while the relational
// semantics keeps action attributes in a separate namespace and re-reads
// the original value.
//
// The planted table matches vlan and carries a mod_vlan action whose
// values lie outside every vlan pattern: {vlan} → {mod_vlan} holds, the
// decomposition dec({vlan} -> {mod_vlan})/rematch is perfectly legal, the
// relational evaluator and the NetKAT oracle both certify it equivalent —
// and every compiled executor drops the traffic, because stage 2 re-
// matches the rewritten vlan. The divergence kind is therefore "verdict"
// with clean relational/oracle layers: the signature of a bug only
// runtime differential testing can see.
//
// This is why the generator never pairs a rewriting action with a match
// on its target field; the committed reproducer keeps the hazard itself
// under regression.
func PlantRematchHazard(seed int64) *Program {
	rng := rand.New(rand.NewSource(seed))
	sch := mat.Schema{
		mat.F(packet.FieldVLAN, 12),
		mat.F(packet.FieldTCPDst, 16),
		mat.A("mod_vlan", 12),
		mat.A("out", 16),
	}
	t := mat.New(fmt.Sprintf("hazard%d", seed), sch)

	// Two vlan groups, two tcp_dst values; mod_vlan constant per group
	// and distinct from every matched vlan; out distinct per entry.
	used12 := make(map[uint64]bool)
	used16 := make(map[uint64]bool)
	var g, m [2]uint64
	var d [2]uint64
	for i := range g {
		g[i] = distinctValue(rng, 12, used12)
		d[i] = distinctValue(rng, 16, used16)
	}
	for i := range m {
		m[i] = distinctValue(rng, 12, used12) // disjoint from g by used12
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			t.Add(
				mat.Exact(g[i], 12),
				mat.Exact(d[j], 16),
				mat.Exact(m[i], 12),
				mat.Exact(distinctValue(rng, 16, used16), 16),
			)
		}
	}
	return &Program{
		Seed:    seed,
		Note:    fmt.Sprintf("rematch-hazard(seed=%d)", seed),
		Table:   t,
		Packets: genPackets(rng, t, DefaultGenConfig()),
	}
}
