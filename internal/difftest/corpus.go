package difftest

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"manorm/internal/mat"
	"manorm/internal/openflow"
	"manorm/internal/packet"
)

// corpusFile is the on-disk reproducer format: the universal table in the
// mat JSON codec, the packets as hex-encoded wire frames (so replay
// parses exactly the bytes the divergence was found on), and the
// divergence kind recorded when the file was written. Schema-mode
// reproducers additionally carry the parse graph (the packet types are
// JSON-serializable; Verify hooks are dropped, which the generators never
// rely on) — when Graph is present the frames replay through its compiled
// decoder instead of the canonical parser.
type corpusFile struct {
	Seed   int64              `json:"seed"`
	Note   string             `json:"note,omitempty"`
	Kind   string             `json:"kind,omitempty"`
	Caveat bool               `json:"caveat,omitempty"`
	Graph  *packet.ParseGraph `json:"graph,omitempty"`
	Table  *mat.Table         `json:"table"`
	Frames []string           `json:"frames"`
	// Batches carries confluence-mode reproducers: the concurrent flow-mod
	// batches replayed against the table as the base state (mat.Cell
	// marshals as a plain struct, so flow-mods round-trip as-is).
	Batches [][]openflow.FlowMod `json:"batches,omitempty"`
}

// MarshalCorpus serializes a program (plus the divergence kind that
// triggered the write) into the corpus JSON format.
func MarshalCorpus(p *Program, kind string) ([]byte, error) {
	cf := corpusFile{Seed: p.Seed, Note: p.Note, Kind: kind, Caveat: p.Caveat, Graph: p.Graph, Table: p.Table, Batches: p.Batches}
	if p.SchemaMode() {
		cf.Frames = make([]string, len(p.Frames))
		for i, f := range p.Frames {
			cf.Frames[i] = hex.EncodeToString(f)
		}
	} else {
		cf.Frames = make([]string, len(p.Packets))
		for i, pk := range p.Packets {
			cf.Frames[i] = hex.EncodeToString(pk.Marshal(nil))
		}
	}
	return json.MarshalIndent(cf, "", "  ")
}

// UnmarshalCorpus parses a corpus file back into a replayable program and
// the recorded divergence kind.
func UnmarshalCorpus(b []byte) (*Program, string, error) {
	var cf corpusFile
	if err := json.Unmarshal(b, &cf); err != nil {
		return nil, "", fmt.Errorf("difftest: corpus: %w", err)
	}
	if cf.Table == nil {
		return nil, "", fmt.Errorf("difftest: corpus: no table")
	}
	p := &Program{Seed: cf.Seed, Note: cf.Note, Caveat: cf.Caveat, Graph: cf.Graph, Table: cf.Table, Batches: cf.Batches}
	if cf.Graph != nil {
		// Validate the deserialized graph (and every frame against it) up
		// front, so a corrupt reproducer fails here rather than mid-replay.
		dec, err := cf.Graph.Compile()
		if err != nil {
			return nil, "", fmt.Errorf("difftest: corpus graph: %w", err)
		}
		view := dec.NewView()
		for i, h := range cf.Frames {
			raw, err := hex.DecodeString(h)
			if err != nil {
				return nil, "", fmt.Errorf("difftest: corpus frame %d: %w", i, err)
			}
			if err := dec.ParseInto(view, raw); err != nil {
				return nil, "", fmt.Errorf("difftest: corpus frame %d: %w", i, err)
			}
			p.Frames = append(p.Frames, raw)
		}
		return p, cf.Kind, nil
	}
	for i, h := range cf.Frames {
		raw, err := hex.DecodeString(h)
		if err != nil {
			return nil, "", fmt.Errorf("difftest: corpus frame %d: %w", i, err)
		}
		pk, err := packet.Parse(raw)
		if err != nil {
			return nil, "", fmt.Errorf("difftest: corpus frame %d: %w", i, err)
		}
		p.Packets = append(p.Packets, pk)
	}
	return p, cf.Kind, nil
}

// WriteCorpus writes the program into dir under a content-addressed name
// ("<kind>-<hash>.json"), creating dir if needed, and returns the path.
// Writing the same reproducer twice is idempotent.
func WriteCorpus(dir string, p *Program, kind string) (string, error) {
	b, err := MarshalCorpus(p, kind)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	path := filepath.Join(dir, fmt.Sprintf("%s-%s.json", kind, hex.EncodeToString(sum[:4])))
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadCorpus loads one corpus file.
func ReadCorpus(path string) (*Program, string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	return UnmarshalCorpus(b)
}

// CorpusFiles lists the corpus files in dir in sorted order; a missing
// directory is an empty corpus.
func CorpusFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}

// Replay executes one corpus file and reports its divergences plus the
// kind recorded when it was written. Regression tests assert that every
// committed reproducer still diverges with its recorded kind.
func Replay(path string, cfg ExecConfig) ([]Divergence, string, error) {
	p, kind, err := ReadCorpus(path)
	if err != nil {
		return nil, "", err
	}
	divs, err := Execute(p, cfg)
	return divs, kind, err
}
