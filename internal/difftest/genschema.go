package difftest

import (
	"fmt"
	"math/rand"

	"manorm/internal/mat"
	"manorm/internal/packet"
)

// This file is the schema-mode generator: instead of drawing match
// columns from the fixed canonical field set, it invents a random header
// schema and a chain-shaped parse graph, writes the universal table
// against the invented fields, and renders the input batch as wire frames
// through the compiled decoder. Theorem 1 does not care what the fields
// are called or how wide they are — so every representation of a clean
// schema program must still agree, now with the parser in the loop.

// schemaShape is one invented schema plus the bookkeeping the generator
// needs: which fields steer the parse (and are therefore pinned in every
// generated frame) and which are free for matching and rewriting.
type schemaShape struct {
	graph *packet.ParseGraph
	dec   *packet.Decoder
	// selVals[i] is the value the i-th chain transition keys on; frames
	// carry it so the whole chain parses.
	selNames []string
	selVals  []uint64
	// free lists the fields available as match columns or rewrite
	// targets: everything except select fields and padding.
	free []attrSpec
}

// genSchemaShape invents a 2–4 header chain. Each header gets 1–3 random
// fields (4..32 bits) plus padding to a byte boundary; the first field of
// every non-terminal header is the select steering the single forward
// transition. All invented schemas parse every well-formed frame to the
// full chain, so presence is total and the relational record covers every
// field — mirroring the full-stack discipline of the canonical generator.
func genSchemaShape(seed int64, rng *rand.Rand) (*schemaShape, error) {
	nh := 2 + rng.Intn(3)
	headers := make([]packet.Header, 0, nh)
	shape := &schemaShape{}
	for h := 0; h < nh; h++ {
		nf := 1 + rng.Intn(3)
		bits := 0
		var fs []packet.FieldSpec
		for f := 0; f < nf; f++ {
			w := uint8(4 + rng.Intn(29)) // 4..32 bits
			fs = append(fs, packet.FieldSpec{Name: fmt.Sprintf("h%df%d", h, f), Width: w})
			bits += int(w)
		}
		if pad := (8 - bits%8) % 8; pad > 0 {
			fs = append(fs, packet.FieldSpec{Name: fmt.Sprintf("h%dpad", h), Width: uint8(pad)})
		}
		headers = append(headers, packet.Header{Name: fmt.Sprintf("h%d", h), Fields: fs})
	}
	schema, err := packet.NewHeaderSchema(fmt.Sprintf("fuzzschema%d", seed), headers...)
	if err != nil {
		return nil, err
	}
	states := make(map[string]packet.State, nh)
	for h := 0; h < nh-1; h++ {
		sel := headers[h].Fields[0]
		v := rng.Uint64() & mask(sel.Width)
		shape.selNames = append(shape.selNames, sel.Name)
		shape.selVals = append(shape.selVals, v)
		states[headers[h].Name] = packet.State{
			Select:      sel.Name,
			Transitions: []packet.Transition{{Value: v, Next: headers[h+1].Name}},
		}
	}
	states[headers[nh-1].Name] = packet.State{}
	shape.graph = &packet.ParseGraph{Schema: schema, Start: headers[0].Name, States: states}
	if shape.dec, err = shape.graph.Compile(); err != nil {
		return nil, err
	}
	sel := make(map[string]bool, len(shape.selNames))
	for _, n := range shape.selNames {
		sel[n] = true
	}
	for h, hdr := range headers {
		for fi, f := range hdr.Fields {
			if sel[f.Name] || f.Name == fmt.Sprintf("h%dpad", h) {
				continue
			}
			_ = fi
			shape.free = append(shape.free, attrSpec{name: f.Name, width: f.Width, target: f.Name})
		}
	}
	return shape, nil
}

// GenerateSchema produces one seeded, deterministic schema-mode program:
// an invented header schema and parse graph, a 1NF universal table over
// its free fields (with the same group structure as Generate, so the
// normalizer has dependencies to find), and a frame batch rendered
// through the decoder with the chain's select values pinned. The table's
// provenance is the schema name, so every compiled layer type-checks the
// program against the right decoder.
func GenerateSchema(seed int64, cfg GenConfig) *Program {
	rng := rand.New(rand.NewSource(seed))
	shape, err := genSchemaShape(seed, rng)
	if err != nil {
		// Shape generation is total over the parameter space; an error is
		// a programming bug, and the fuzz target should see it loudly.
		panic(fmt.Sprintf("difftest: schema shape for seed %d: %v", seed, err))
	}

	nf := cfg.MinFields + rng.Intn(cfg.MaxFields-cfg.MinFields+1)
	if nf > len(shape.free) {
		nf = len(shape.free)
	}
	if nf < 1 {
		nf = 1
	}
	perm := rng.Perm(len(shape.free))
	fields := make([]attrSpec, nf)
	matched := make(map[string]bool, nf)
	for i := 0; i < nf; i++ {
		fields[i] = shape.free[perm[i]]
		matched[fields[i].name] = true
	}
	acts := []attrSpec{{name: "out", width: 16}}
	for _, i := range perm[nf:] {
		f := shape.free[i]
		if len(acts)-1 >= cfg.MaxExtraActions {
			break
		}
		if rng.Float64() < 0.5 {
			acts = append(acts, attrSpec{name: "mod_" + f.name, width: f.width, target: f.name})
		}
	}

	sch := make(mat.Schema, 0, nf+len(acts))
	for _, f := range fields {
		sch = append(sch, mat.F(f.name, f.width))
	}
	for _, a := range acts {
		sch = append(sch, mat.A(a.name, a.width))
	}
	t := mat.New(fmt.Sprintf("fuzzschema%d", seed), sch)
	t.Provenance = shape.graph.Schema.Name

	pools := make([][]mat.Cell, nf)
	for i, f := range fields {
		pools[i] = cellPool(rng, f.width, 2, true)
	}
	G := 1 + rng.Intn(min(3, len(pools[0])))
	determined := make([]bool, len(acts))
	for ai := range acts {
		p := 0.6
		if ai == 0 {
			p = 0.5
		}
		determined[ai] = rng.Float64() < p
	}
	groupActs := make([][]uint64, G)
	for g := 0; g < G; g++ {
		groupActs[g] = make([]uint64, len(acts))
		for ai, a := range acts {
			groupActs[g][ai] = rng.Uint64() & mask(a.width)
		}
	}
	ne := 2 + rng.Intn(cfg.MaxEntries-1)
	seen := make(map[string]bool, ne)
	for k := 0; k < ne; k++ {
		g := rng.Intn(G)
		cells := make([]mat.Cell, 0, len(sch))
		cells = append(cells, pools[0][g])
		for fi := 1; fi < nf; fi++ {
			cells = append(cells, pools[fi][rng.Intn(len(pools[fi]))])
		}
		key := fmt.Sprint(cells)
		if seen[key] {
			continue
		}
		seen[key] = true
		for ai, a := range acts {
			v := rng.Uint64() & mask(a.width)
			if determined[ai] {
				v = groupActs[g][ai]
			}
			cells = append(cells, mat.Exact(v, a.width))
		}
		t.Add(cells...)
	}
	dropAmbiguous(t)

	return &Program{
		Seed:   seed,
		Note:   fmt.Sprintf("genschema(seed=%d)", seed),
		Table:  t,
		Graph:  shape.graph,
		Frames: genSchemaFrames(rng, shape, t, cfg),
	}
}

// genSchemaFrames renders the input batch: full-chain frames with the
// select values pinned, matched fields biased into the table's patterns,
// and everything round-tripped through Marshal so the replayed bytes are
// exactly what the executors parse.
func genSchemaFrames(rng *rand.Rand, shape *schemaShape, t *mat.Table, cfg GenConfig) [][]byte {
	np := cfg.MinPackets + rng.Intn(cfg.MaxPackets-cfg.MinPackets+1)
	frames := make([][]byte, 0, np)
	view := shape.dec.NewView()
	schema := shape.dec.Schema()
	fieldIdx := t.Schema.Fields()
	for i := 0; i < np; i++ {
		view.Reset()
		for h := range shape.graph.Schema.Headers {
			view.MarkPresent(h)
		}
		// Random base values everywhere, then pins and biases on top.
		for s := 0; s < schema.NumSlots(); s++ {
			view.Set(s, rng.Uint64())
		}
		for si, n := range shape.selNames {
			view.SetName(n, shape.selVals[si])
		}
		for _, fi := range fieldIdx {
			a := t.Schema[fi]
			v := rng.Uint64() & mask(a.Width)
			if len(t.Entries) > 0 && rng.Float64() < 0.85 {
				c := t.Entries[rng.Intn(len(t.Entries))][fi]
				v = c.Bits | (rng.Uint64() & (mask(a.Width) &^ prefixMask(c.PLen, a.Width)))
			}
			view.SetName(a.Name, v)
		}
		if rng.Float64() < 0.3 {
			view.SetPayload([]byte{byte(i), 0xde, 0xad})
		} else {
			view.SetPayload(nil)
		}
		frames = append(frames, view.Marshal(nil))
	}
	return frames
}

// PlantSchemaHazard is the schema-mode twin of PlantRematchHazard: a
// VXLAN program matching the VNI and carrying a mod_vxlan_vni rewrite
// whose values lie outside every matched VNI. {vxlan_vni} →
// {mod_vxlan_vni} holds, so the normalizer's rematch decomposition is
// legal and relationally equivalent — but the dep-first rematch stage has
// already rewritten the VNI the rest stage re-matches, so every compiled
// executor drops the traffic. Kind "verdict" with clean relational and
// oracle layers, now reproduced through the programmable parser.
func PlantSchemaHazard(seed int64) (*Program, error) {
	rng := rand.New(rand.NewSource(seed))
	graph, err := packet.BuiltinGraph(packet.SchemaVXLAN)
	if err != nil {
		return nil, err
	}
	dec, err := graph.Compile()
	if err != nil {
		return nil, err
	}
	sch := mat.Schema{
		mat.F(packet.FieldVXLANVNI, 24),
		mat.F(packet.FieldInnerEthDst, 48),
		mat.A("mod_"+packet.FieldVXLANVNI, 24),
		mat.A("out", 16),
	}
	t := mat.New(fmt.Sprintf("schemahazard%d", seed), sch)
	t.Provenance = packet.SchemaVXLAN

	used24 := make(map[uint64]bool)
	used48 := make(map[uint64]bool)
	used16 := make(map[uint64]bool)
	var vni, mod [2]uint64
	var mac [2]uint64
	for i := range vni {
		vni[i] = distinctValue(rng, 24, used24)
		mac[i] = distinctValue(rng, 48, used48)
	}
	for i := range mod {
		mod[i] = distinctValue(rng, 24, used24) // disjoint from matched VNIs
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			t.Add(
				mat.Exact(vni[i], 24),
				mat.Exact(mac[j], 48),
				mat.Exact(mod[i], 24),
				mat.Exact(distinctValue(rng, 16, used16), 16),
			)
		}
	}

	// Frames: the four installed (vni, mac) pairs plus one miss.
	view := dec.NewView()
	var frames [][]byte
	emit := func(v, m uint64) {
		view.Reset()
		for h := range dec.Schema().Headers {
			view.MarkPresent(h)
		}
		view.SetName(packet.FieldEthType, packet.EtherTypeIPv4)
		view.SetName("ip_verihl", 0x45)
		view.SetName("ip_ttl", 64)
		view.SetName("ip_proto", packet.ProtoUDP)
		view.SetName("udp_dst", packet.UDPPortVXLAN)
		view.SetName("vxlan_flags", 0x08)
		view.SetName(packet.FieldVXLANVNI, v)
		view.SetName(packet.FieldInnerEthDst, m)
		frames = append(frames, view.Marshal(nil))
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			emit(vni[i], mac[j])
		}
	}
	emit(distinctValue(rng, 24, used24), mac[0])

	return &Program{
		Seed:   seed,
		Note:   fmt.Sprintf("schema-rematch-hazard(seed=%d)", seed),
		Table:  t,
		Graph:  graph,
		Frames: frames,
	}, nil
}
