package difftest

import (
	"strings"
	"testing"

	"manorm/internal/mat"
	"manorm/internal/packet"
)

// TestExecuteClean: well-formed generated programs must execute with zero
// divergences across every representation, every switch model, and the
// oracle — the paper's Theorem 1, checked end to end. mafuzz runs the
// same check over thousands of seeds; this is the fast always-on slice.
func TestExecuteClean(t *testing.T) {
	cfg := DefaultExecConfig()
	for seed := int64(1); seed <= 25; seed++ {
		p := Generate(seed, DefaultGenConfig())
		divs, err := Execute(p, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, d := range divs {
			t.Errorf("seed %d: %s", seed, d)
		}
		if t.Failed() {
			t.Fatalf("diverging table:\n%s", p.Table)
		}
	}
}

// TestExecuteCaveatDiverges: every planted Fig. 3 program must produce at
// least one divergence, and the divergences must include the two
// signatures of a 1NF violation — the relational evaluator's ambiguity
// error and/or a wrong verdict from a silently tie-breaking classifier.
func TestExecuteCaveatDiverges(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		p, err := PlantCaveat(seed, DefaultGenConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		divs, err := Execute(p, DefaultExecConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(divs) == 0 {
			t.Fatalf("seed %d: caveat program did not diverge:\n%s", seed, p.Table)
		}
		caveatOnly := true
		for _, d := range divs {
			// The fused twin of the planted pipeline inherits its
			// divergence — fusion reproduces datapath semantics.
			if strings.TrimSuffix(d.Variant, "+fused") != "fig3-caveat" {
				caveatOnly = false
			}
		}
		if !caveatOnly {
			t.Fatalf("seed %d: divergence outside the planted variant: %v", seed, divs)
		}
	}
}

// TestExecuteDetectsBrokenPipeline: hand-build an obviously wrong
// representation (wrong output port) as a universal-vs-variant pair via
// the caveat hook and confirm the relational layer flags it. This guards
// the executor itself: a harness that cannot see a planted bug would
// happily report thousands of clean iterations.
func TestExecuteDetectsBrokenPipeline(t *testing.T) {
	sch := mat.Schema{mat.F(packet.FieldVLAN, 12), mat.F(packet.FieldTCPDst, 16), mat.A("out", 16)}
	tab := mat.New("fig3", sch)
	// The paper's Fig. 3 instance: out is determined by (vlan, tcp_dst)
	// jointly, and {out} → {tcp_dst} holds.
	tab.Add(mat.Exact(1, 12), mat.Exact(80, 16), mat.Exact(1, 16))
	tab.Add(mat.Exact(1, 12), mat.Exact(443, 16), mat.Exact(2, 16))
	tab.Add(mat.Exact(2, 12), mat.Exact(80, 16), mat.Exact(3, 16))
	tab.Add(mat.Exact(2, 12), mat.Exact(443, 16), mat.Exact(4, 16))

	mk := func(vlan uint16, dport uint16) *packet.Packet {
		pk := packet.TCP4(0xa, 0xb, 0x0a000001, 0x0a000002, 1234, dport)
		pk.HasVLAN = true
		pk.VLANID = vlan
		var q packet.Packet
		if err := q.ParseInto(pk.Marshal(nil)); err != nil {
			t.Fatal(err)
		}
		return &q
	}
	p := &Program{
		Note:   "hand-built fig3",
		Caveat: true,
		Table:  tab,
		Packets: []*packet.Packet{
			mk(1, 80), mk(1, 443), mk(2, 80), mk(2, 443), mk(3, 80),
		},
	}
	divs, err := Execute(p, DefaultExecConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sawEval, sawRuntime bool
	for _, d := range divs {
		if strings.TrimSuffix(d.Variant, "+fused") != "fig3-caveat" {
			t.Fatalf("divergence outside planted variant: %s", d)
		}
		switch d.Kind {
		case KindEval:
			sawEval = true
			if !strings.Contains(d.Detail, "ambiguous") {
				t.Fatalf("eval divergence without ambiguity: %s", d)
			}
		case KindVerdict, KindConstruct, KindOracle, KindRelational:
			sawRuntime = true
		}
	}
	if !sawEval {
		t.Fatalf("relational ambiguity not detected: %v", divs)
	}
	if !sawRuntime {
		t.Fatalf("no compiled-layer divergence detected: %v", divs)
	}
}

// TestExecuteFusedTwinsRun: the compiled layers must actually execute the
// fused twins — on the planted rematch hazard the fused twin of the
// rematch decomposition has to reproduce the verdict divergence (fusion
// resolves the re-match against the written constant, i.e. datapath
// semantics), not silently drop out of the matrix.
func TestExecuteFusedTwinsRun(t *testing.T) {
	p := PlantRematchHazard(2)
	divs, err := Execute(p, DefaultExecConfig())
	if err != nil {
		t.Fatal(err)
	}
	fused := 0
	for _, d := range divs {
		if strings.HasSuffix(d.Variant, "+fused") {
			fused++
			if d.Kind != KindVerdict {
				t.Fatalf("fused twin diverged with kind %s, want verdict: %s", d.Kind, d)
			}
		}
	}
	if fused == 0 {
		t.Fatalf("no fused-twin divergence on the hazard program: %v", divs)
	}
}

// TestExecuteCleanOnFig3Universal: the Fig. 3 *universal* table is a fine
// 1NF program — without the Caveat flag it must execute cleanly. The trap
// is the decomposition, not the table.
func TestExecuteCleanOnFig3Universal(t *testing.T) {
	p, err := PlantCaveat(3, DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.Caveat = false
	divs, err := Execute(p, DefaultExecConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(divs) != 0 {
		t.Fatalf("universal fig3 table diverged without the planted pipeline: %v", divs)
	}
}

// TestExecuteHazardSignature: the set-field/rematch hazard must show the
// signature that motivates runtime differential testing — the relational
// evaluator and the NetKAT oracle certify the decomposition equivalent,
// while every compiled executor diverges on the verdict.
func TestExecuteHazardSignature(t *testing.T) {
	p := PlantRematchHazard(2)
	divs, err := Execute(p, DefaultExecConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(divs) == 0 {
		t.Fatalf("hazard program did not diverge:\n%s", p.Table)
	}
	for _, d := range divs {
		if d.Kind != KindVerdict {
			t.Fatalf("expected only verdict divergences, got %s", d)
		}
		if d.Model == "" {
			t.Fatalf("hazard divergence at the relational/oracle layer: %s", d)
		}
		if !strings.Contains(d.Variant, "rematch") && !strings.Contains(d.Variant, "const") {
			t.Fatalf("divergence outside the rematch/const decomposition: %s", d)
		}
	}
}
