package difftest

import (
	"fmt"
	"math/rand"

	"manorm/internal/mat"
	"manorm/internal/packet"
)

// GenConfig bounds the generator. The defaults are sized so that one
// program's full differential execution (all variants × all models ×
// oracle) stays in the low milliseconds — mafuzz runs thousands of them.
type GenConfig struct {
	// MinFields/MaxFields bound the number of match columns.
	MinFields, MaxFields int
	// MaxExtraActions bounds the header-rewriting actions added besides
	// the always-present "out".
	MaxExtraActions int
	// MaxEntries bounds the entry count (before deduplication).
	MaxEntries int
	// MinPackets/MaxPackets bound the input batch.
	MinPackets, MaxPackets int
	// PlantActionFD switches the generator into caveat mode: the table is
	// shaped like the paper's Fig. 3 — an action column whose value
	// functionally determines a match field, without the remaining match
	// columns determining the action. Decomposing along that dependency
	// is exactly what Theorem 1 forbids; PlantCaveat builds the forbidden
	// pipeline from it.
	PlantActionFD bool
}

// DefaultGenConfig returns the standard fuzzing envelope.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		MinFields: 2, MaxFields: 4,
		MaxExtraActions: 2,
		MaxEntries:      12,
		MinPackets:      8, MaxPackets: 20,
	}
}

// attrSpec is one choosable schema attribute.
type attrSpec struct {
	name  string
	width uint8
	// target is the canonical packet field a rewriting action writes
	// ("" for match fields and for "out").
	target string
}

// fieldPool lists the match fields the generator draws from. eth_type and
// ip_proto are excluded: generated packets are always Ethernet/IPv4/TCP,
// so those fields are constant and matching them adds nothing.
var fieldPool = []attrSpec{
	{name: packet.FieldEthSrc, width: 48},
	{name: packet.FieldEthDst, width: 48},
	{name: packet.FieldVLAN, width: 12},
	{name: packet.FieldIPSrc, width: 32},
	{name: packet.FieldIPDst, width: 32},
	{name: packet.FieldTTL, width: 8},
	{name: packet.FieldTCPSrc, width: 16},
	{name: packet.FieldTCPDst, width: 16},
}

// actionPool lists the optional rewriting actions (the dataplane maps
// them onto header fields; see internal/dataplane). mod_ttl is excluded
// because its decrement semantics has no relational counterpart.
var actionPool = []attrSpec{
	{name: "mod_vlan", width: 12, target: packet.FieldVLAN},
	{name: "mod_smac", width: 48, target: packet.FieldEthSrc},
	{name: "mod_dmac", width: 48, target: packet.FieldEthDst},
}

// mask returns the low-width-bits mask.
func mask(width uint8) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << width) - 1
}

// prefixMask selects the top plen bits of a width-bit value.
func prefixMask(plen, width uint8) uint64 {
	if plen == 0 {
		return 0
	}
	if plen > width {
		plen = width
	}
	return mask(width) &^ mask(width-plen)
}

// cellPool builds a pool of pairwise-disjoint match patterns for one
// column, mixing exact values with prefixes of varying length.
//
// Disjointness per column is a deliberate soundness constraint, not a
// simplification: the OVS megaflow cache (see the trace-soundness note in
// internal/dataplane) is only exact for tables whose per-column patterns
// are pairwise disjoint or equal, and under that discipline two entries
// overlap iff their match rows are identical — so a deduplicated table
// can never hit the runtime ambiguity error. Clean programs therefore
// execute everywhere without caveats; ambiguity is reserved for the
// deliberately planted Fig. 3 reproducers.
func cellPool(rng *rand.Rand, width uint8, minCells int, allowWildcard bool) []mat.Cell {
	if allowWildcard && rng.Float64() < 0.15 {
		return []mat.Cell{mat.Any()}
	}
	n := minCells + rng.Intn(4)
	if n < minCells {
		n = minCells
	}
	var cells []mat.Cell
	for tries := 0; len(cells) < n && tries < 8*n; tries++ {
		span := uint8(8)
		if span > width {
			span = width
		}
		plen := width - uint8(rng.Intn(int(span)))
		if rng.Float64() < 0.5 {
			plen = width // bias toward exact matches
		}
		c := mat.Prefix(rng.Uint64(), plen, width)
		disjoint := true
		for _, o := range cells {
			if c.Overlaps(o, width) {
				disjoint = false
				break
			}
		}
		if disjoint {
			cells = append(cells, c)
		}
	}
	// Top up with sequential exact values if random draws kept colliding,
	// so minCells is a guarantee, not a hope.
	for v := uint64(0); len(cells) < minCells; v++ {
		c := mat.Exact(v, width)
		disjoint := true
		for _, o := range cells {
			if c.Overlaps(o, width) {
				disjoint = false
				break
			}
		}
		if disjoint {
			cells = append(cells, c)
		}
	}
	return cells
}

// distinctValue draws an exact width-bit value not yet in used, marking
// it used.
func distinctValue(rng *rand.Rand, width uint8, used map[uint64]bool) uint64 {
	for {
		v := rng.Uint64() & mask(width)
		if !used[v] {
			used[v] = true
			return v
		}
	}
}

// Generate produces one seeded, deterministic program: a 1NF universal
// table with planted field→action dependencies (so the normalizer has
// structure to decompose) and a packet batch biased toward the installed
// entries. The same seed and config always produce the same program.
func Generate(seed int64, cfg GenConfig) *Program {
	rng := rand.New(rand.NewSource(seed))
	if cfg.PlantActionFD {
		return generateCaveat(seed, rng, cfg)
	}

	// Schema: nf match fields, "out", and extra rewriting actions whose
	// target field is not itself matched (a set-field into a field a
	// later stage re-matches would change the match result mid-pipeline —
	// real switches behave that way, the relational semantics does not;
	// see the hazard reproducer in testdata/corpus).
	nf := cfg.MinFields + rng.Intn(cfg.MaxFields-cfg.MinFields+1)
	perm := rng.Perm(len(fieldPool))
	fields := make([]attrSpec, nf)
	matched := make(map[string]bool, nf)
	for i := 0; i < nf; i++ {
		fields[i] = fieldPool[perm[i]]
		matched[fields[i].name] = true
	}
	acts := []attrSpec{{name: "out", width: 16}}
	for _, i := range rng.Perm(len(actionPool)) {
		a := actionPool[i]
		if len(acts)-1 >= cfg.MaxExtraActions || matched[a.target] {
			continue
		}
		if rng.Float64() < 0.5 {
			acts = append(acts, a)
		}
	}

	sch := make(mat.Schema, 0, nf+len(acts))
	for _, f := range fields {
		sch = append(sch, mat.F(f.name, f.width))
	}
	for _, a := range acts {
		sch = append(sch, mat.A(a.name, a.width))
	}
	t := mat.New(fmt.Sprintf("fuzz%d", seed), sch)

	pools := make([][]mat.Cell, nf)
	for i, f := range fields {
		pools[i] = cellPool(rng, f.width, 2, true)
	}

	// Group structure: entries cluster on fields[0]'s cell, and a random
	// subset of the actions is constant per group — planting
	// {fields[0]} → {actions...} dependencies for the normalizer to find.
	G := 1 + rng.Intn(min(3, len(pools[0])))
	determined := make([]bool, len(acts))
	for ai := range acts {
		p := 0.6
		if ai == 0 {
			p = 0.5 // "out"
		}
		determined[ai] = rng.Float64() < p
	}
	groupActs := make([][]uint64, G)
	for g := 0; g < G; g++ {
		groupActs[g] = make([]uint64, len(acts))
		for ai, a := range acts {
			groupActs[g][ai] = rng.Uint64() & mask(a.width)
		}
	}

	ne := 2 + rng.Intn(cfg.MaxEntries-1)
	seen := make(map[string]bool, ne)
	for k := 0; k < ne; k++ {
		g := rng.Intn(G)
		cells := make([]mat.Cell, 0, len(sch))
		cells = append(cells, pools[0][g])
		for fi := 1; fi < nf; fi++ {
			cells = append(cells, pools[fi][rng.Intn(len(pools[fi]))])
		}
		key := fmt.Sprint(cells)
		if seen[key] {
			continue
		}
		seen[key] = true
		for ai, a := range acts {
			v := rng.Uint64() & mask(a.width)
			if determined[ai] {
				v = groupActs[g][ai]
			}
			cells = append(cells, mat.Exact(v, a.width))
		}
		t.Add(cells...)
	}
	dropAmbiguous(t)

	return &Program{
		Seed:    seed,
		Note:    fmt.Sprintf("gen(seed=%d)", seed),
		Table:   t,
		Packets: genPackets(rng, t, cfg),
	}
}

// generateCaveat builds a Fig. 3-shaped program: two match columns whose
// cross product carries a per-entry-distinct "out", so {out} → {field}
// holds while neither match column alone determines out. A couple of
// noise entries in a third group give the shrinker something to chew on.
func generateCaveat(seed int64, rng *rand.Rand, cfg GenConfig) *Program {
	perm := rng.Perm(len(fieldPool))
	f0, f1 := fieldPool[perm[0]], fieldPool[perm[1]]
	sch := mat.Schema{
		mat.F(f0.name, f0.width),
		mat.F(f1.name, f1.width),
		mat.A("out", 16),
	}
	t := mat.New(fmt.Sprintf("fuzz%d", seed), sch)
	pool0 := cellPool(rng, f0.width, 3, false)
	pool1 := cellPool(rng, f1.width, 2, false)

	used := make(map[uint64]bool)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			t.Add(pool0[i], pool1[j], mat.Exact(distinctValue(rng, 16, used), 16))
		}
	}
	for k := 0; k < 1+rng.Intn(2) && len(pool0) > 2; k++ {
		t.Add(pool0[2], pool1[rng.Intn(len(pool1))],
			mat.Exact(distinctValue(rng, 16, used), 16))
	}
	dropAmbiguous(t)

	return &Program{
		Seed:    seed,
		Note:    fmt.Sprintf("fig3-caveat(seed=%d)", seed),
		Caveat:  true,
		Table:   t,
		Packets: genPackets(rng, t, cfg),
	}
}

// dropAmbiguous removes entries until no ambiguous pair remains. Under
// the disjoint-column discipline this never fires; it is defense in depth
// so a generator bug cannot masquerade as a dataplane divergence.
func dropAmbiguous(t *mat.Table) {
	for {
		pairs := t.AmbiguousPairs()
		if len(pairs) == 0 {
			return
		}
		i := pairs[0][1]
		t.Entries = append(t.Entries[:i], t.Entries[i+1:]...)
	}
}

// genPackets builds the input batch: full-stack Ethernet/VLAN/IPv4/TCP
// packets (every canonical field present, so the relational record and
// the dataplane agree on field presence), with values biased into the
// table's match patterns and round-tripped through Marshal/Parse so the
// wire frame and the in-memory packet are byte-for-byte consistent.
func genPackets(rng *rand.Rand, t *mat.Table, cfg GenConfig) []*packet.Packet {
	np := cfg.MinPackets + rng.Intn(cfg.MaxPackets-cfg.MinPackets+1)
	pkts := make([]*packet.Packet, 0, np)
	fieldIdx := t.Schema.Fields()
	for i := 0; i < np; i++ {
		p := &packet.Packet{
			EthDst:  rng.Uint64() & mask(48),
			EthSrc:  rng.Uint64() & mask(48),
			EthType: packet.EtherTypeIPv4,
			HasVLAN: true,
			VLANID:  uint16(rng.Uint64() & 0x0FFF),
			HasIPv4: true,
			TTL:     uint8(1 + rng.Intn(255)),
			Proto:   packet.ProtoTCP,
			IPSrc:   uint32(rng.Uint64()),
			IPDst:   uint32(rng.Uint64()),
			HasL4:   true,
			SrcPort: uint16(rng.Uint64()),
			DstPort: uint16(rng.Uint64()),
		}
		for _, fi := range fieldIdx {
			a := t.Schema[fi]
			v := rng.Uint64() & mask(a.Width)
			if len(t.Entries) > 0 && rng.Float64() < 0.85 {
				c := t.Entries[rng.Intn(len(t.Entries))][fi]
				v = c.Bits | (rng.Uint64() & (mask(a.Width) &^ prefixMask(c.PLen, a.Width)))
			}
			p.SetField(a.Name, v)
		}
		// Round-trip: the parsed frame is the packet of record, so the
		// switch models (which parse wire bytes) and the relational
		// semantics (which reads the struct) see identical values.
		var q packet.Packet
		if err := q.ParseInto(p.Marshal(nil)); err != nil {
			continue
		}
		pkts = append(pkts, &q)
	}
	return pkts
}
