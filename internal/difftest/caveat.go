package difftest

import (
	"errors"
	"fmt"

	"manorm/internal/core"
	"manorm/internal/fd"
	"manorm/internal/mat"
)

// CaveatPipeline hand-builds the decomposition the paper's Fig. 3 warns
// about and core.Decompose refuses (ErrActionToMatch): splitting a table
// along a dependency whose left-hand side contains an action attribute
// and whose right-hand side contains a match field.
//
// Heath's theorem still applies relationally — the projections join back
// to the original table — but the first stage must then decide the action
// *without* seeing the moved match field, which leaves it with duplicate
// match rows: the resulting table is not order-independent (not 1NF), and
// no priority assignment can make it faithful. Executing this pipeline is
// how the differential harness demonstrates the caveat is real: the
// relational evaluator reports the ambiguity, and compiled classifiers
// silently tie-break and return wrong verdicts.
func CaveatPipeline(t *mat.Table) (*mat.Pipeline, error) {
	a := core.Analyze(t)
	cands := fd.ActionToMatch(t.Schema, a.FDs)
	if len(cands) == 0 {
		return nil, errors.New("difftest: table has no action-to-match dependency to exploit")
	}
	f := cands[0]

	// Move a single determined match field to the second stage (Fig. 3
	// moves vlan); everything else stays in stage 1 together with the
	// metadata tag identifying the LHS group.
	x := f.From
	var y mat.AttrSet
	for _, i := range f.To.Minus(x).Members() {
		if t.Schema[i].Kind == mat.Field {
			y = mat.NewAttrSet(i)
			break
		}
	}
	if y.Empty() {
		return nil, errors.New("difftest: dependency has no match field to move")
	}

	groups := t.GroupBy(x)
	gidOf := make([]int, len(t.Entries))
	for gi, idxs := range groups {
		for _, ei := range idxs {
			gidOf[ei] = gi
		}
	}
	mw := uint8(1)
	for n := len(groups); n > 1<<mw; {
		mw++
	}
	metaName := mat.MetaPrefix + "_" + x.Names(t.Schema)[0]

	// Stage 1: every attribute except the moved field, plus the metadata
	// write. The projection keeps full rows distinct but match rows
	// duplicated — the 1NF violation the construction cannot avoid.
	s1Idx := mat.FullSet(len(t.Schema)).Minus(y).Members()
	s1Sch := append(t.Schema.Project(s1Idx), mat.A(metaName, mw))
	s1 := mat.New(t.Name+"_dec", s1Sch)
	seen1 := make(map[string]bool, len(t.Entries))
	for ei, e := range t.Entries {
		row := make([]mat.Cell, 0, len(s1Sch))
		for _, i := range s1Idx {
			row = append(row, e[i])
		}
		row = append(row, mat.Exact(uint64(gidOf[ei]), mw))
		k := fmt.Sprint(row)
		if seen1[k] {
			continue
		}
		seen1[k] = true
		s1.Add(row...)
	}

	// Stage 2: the metadata tag plus the moved match field — the
	// "validation" table that checks the field against the group.
	yIdx := y.Members()
	s2Sch := append(mat.Schema{mat.F(metaName, mw)}, t.Schema.Project(yIdx)...)
	s2 := mat.New(t.Name+"_dep", s2Sch)
	seen2 := make(map[string]bool, len(t.Entries))
	for ei, e := range t.Entries {
		row := make([]mat.Cell, 0, len(s2Sch))
		row = append(row, mat.Exact(uint64(gidOf[ei]), mw))
		for _, i := range yIdx {
			row = append(row, e[i])
		}
		k := fmt.Sprint(row)
		if seen2[k] {
			continue
		}
		seen2[k] = true
		s2.Add(row...)
	}

	p := &mat.Pipeline{
		Name: t.Name + "-fig3",
		Stages: []mat.Stage{
			{Table: s1, Next: 1, MissDrop: true},
			{Table: s2, Next: -1, MissDrop: true},
		},
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("difftest: caveat pipeline invalid: %w", err)
	}
	return p, nil
}

// PlantCaveat generates a program carrying the Fig. 3 trap: a universal
// table with an action-to-match dependency plus the Caveat flag that
// makes Execute attach the forbidden decomposition. Executing it must
// diverge; the caller typically shrinks the result and writes it to the
// corpus.
func PlantCaveat(seed int64, cfg GenConfig) (*Program, error) {
	cfg.PlantActionFD = true
	p := Generate(seed, cfg)
	if _, err := CaveatPipeline(p.Table); err != nil {
		return nil, fmt.Errorf("difftest: seed %d: %w", seed, err)
	}
	return p, nil
}
