package difftest

import (
	"bytes"
	"testing"

	"manorm/internal/core"
	"manorm/internal/packet"
)

// TestGenerateDeterministic: the same seed must produce byte-identical
// programs — the whole corpus/replay design depends on it.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a, err := MarshalCorpus(Generate(seed, DefaultGenConfig()), "")
		if err != nil {
			t.Fatal(err)
		}
		b, err := MarshalCorpus(Generate(seed, DefaultGenConfig()), "")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
}

// TestGenerateWellFormed checks the generator's structural invariants:
// valid 1NF tables with no ambiguous pairs, and packets whose in-memory
// record survives the wire round trip unchanged (so the relational and
// frame-level executors see the same values).
func TestGenerateWellFormed(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		p := Generate(seed, DefaultGenConfig())
		if err := p.Table.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !p.Table.IsOrderIndependent() {
			t.Fatalf("seed %d: generated table not 1NF:\n%s", seed, p.Table)
		}
		if n := len(p.Table.AmbiguousPairs()); n != 0 {
			t.Fatalf("seed %d: %d ambiguous pairs:\n%s", seed, n, p.Table)
		}
		if len(p.Packets) == 0 {
			t.Fatalf("seed %d: no packets", seed)
		}
		for i, pk := range p.Packets {
			var q packet.Packet
			if err := q.ParseInto(pk.Marshal(nil)); err != nil {
				t.Fatalf("seed %d pkt %d: %v", seed, i, err)
			}
			if !pk.Record().Equal(q.Record()) {
				t.Fatalf("seed %d pkt %d: record changed across marshal/parse:\n%v\n%v",
					seed, i, pk.Record(), q.Record())
			}
		}
	}
}

// TestGenerateDecomposable: the planted group structure must give the
// normalizer real dependencies to work with — across a seed range, a good
// fraction of programs must produce multi-stage variants, otherwise the
// harness would only ever compare the universal table with itself.
func TestGenerateDecomposable(t *testing.T) {
	multi := 0
	for seed := int64(1); seed <= 30; seed++ {
		p := Generate(seed, DefaultGenConfig())
		vs, err := core.Variants(p.Table, core.NF3)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range vs {
			if v.Pipeline.Depth() > 1 {
				multi++
				break
			}
		}
	}
	if multi < 10 {
		t.Fatalf("only %d/30 programs produced a multi-stage variant", multi)
	}
}

// TestGenerateCaveatShape: caveat mode must plant an action-to-match
// dependency on a 1NF universal table — the trap is in the decomposition,
// never in the original.
func TestGenerateCaveatShape(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		p, err := PlantCaveat(seed, DefaultGenConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !p.Caveat {
			t.Fatalf("seed %d: caveat flag not set", seed)
		}
		if !p.Table.IsOrderIndependent() || len(p.Table.AmbiguousPairs()) != 0 {
			t.Fatalf("seed %d: caveat universal table must itself be 1NF:\n%s", seed, p.Table)
		}
		cp, err := CaveatPipeline(p.Table)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if cp.Depth() != 2 {
			t.Fatalf("seed %d: caveat pipeline has depth %d, want 2", seed, cp.Depth())
		}
		if cp.Stages[0].Table.IsOrderIndependent() {
			t.Fatalf("seed %d: caveat first stage is order-independent — trap not planted:\n%s",
				seed, cp.Stages[0].Table)
		}
	}
}
