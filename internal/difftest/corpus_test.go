package difftest

import (
	"testing"
)

// TestCorpusRoundTrip: marshal → unmarshal must preserve the table, the
// caveat flag and every frame byte-for-byte (packets compare via their
// records, which cover all matched fields).
func TestCorpusRoundTrip(t *testing.T) {
	for _, seed := range []int64{3, 7} {
		p := Generate(seed, DefaultGenConfig())
		p.Caveat = seed == 7
		b, err := MarshalCorpus(p, KindVerdict)
		if err != nil {
			t.Fatal(err)
		}
		q, kind, err := UnmarshalCorpus(b)
		if err != nil {
			t.Fatal(err)
		}
		if kind != KindVerdict {
			t.Fatalf("kind %q, want %q", kind, KindVerdict)
		}
		if q.Caveat != p.Caveat || q.Seed != p.Seed || q.Note != p.Note {
			t.Fatalf("metadata changed: %+v vs %+v", q, p)
		}
		if !q.Table.Equal(p.Table) {
			t.Fatalf("table changed across round trip:\n%s\n%s", p.Table, q.Table)
		}
		if len(q.Packets) != len(p.Packets) {
			t.Fatalf("packet count %d, want %d", len(q.Packets), len(p.Packets))
		}
		for i := range p.Packets {
			if !p.Packets[i].Record().Equal(q.Packets[i].Record()) {
				t.Fatalf("packet %d changed across round trip", i)
			}
		}
	}
}

// TestCorpusRejectsGarbage: loader errors, not panics, on malformed
// files.
func TestCorpusRejectsGarbage(t *testing.T) {
	for _, b := range []string{"", "{", `{"frames":["zz"]}`, `{"table":null}`} {
		if _, _, err := UnmarshalCorpus([]byte(b)); err == nil {
			t.Fatalf("no error for %q", b)
		}
	}
}
