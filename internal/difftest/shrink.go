package difftest

import (
	"manorm/internal/mat"
)

// Shrink greedily minimizes a diverging program while preserving the
// divergence: it repeatedly tries dropping packets, entries and schema
// attributes, accepting a candidate only if executing it still yields a
// divergence of the same kind as the original's first. The result is the
// reproducer written to the corpus — typically a handful of entries and
// one or two packets instead of the full generated program.
//
// A program that does not diverge is returned unchanged.
func Shrink(p *Program, cfg ExecConfig) *Program {
	divs, err := Execute(p, cfg)
	if err != nil || len(divs) == 0 {
		return p
	}
	kind := divs[0].Kind
	still := func(c *Program) bool {
		ds, err := Execute(c, cfg)
		if err != nil {
			return false
		}
		for _, d := range ds {
			if d.Kind == kind {
				return true
			}
		}
		return false
	}

	cur := p
	for changed := true; changed; {
		changed = false

		// Packets: keep at least one so the reproducer stays replayable
		// through the frame-level executors.
		for i := len(cur.Packets) - 1; i >= 0 && len(cur.Packets) > 1; i-- {
			c := cur.Clone()
			c.Packets = append(c.Packets[:i], c.Packets[i+1:]...)
			if still(c) {
				cur, changed = c, true
			}
		}

		// Schema-mode frames, same discipline.
		for i := len(cur.Frames) - 1; i >= 0 && len(cur.Frames) > 1; i-- {
			c := cur.Clone()
			c.Frames = append(c.Frames[:i], c.Frames[i+1:]...)
			if still(c) {
				cur, changed = c, true
			}
		}

		// Confluence batches: drop individual mods (keeping each batch
		// non-empty) and then whole batches (keeping at least two — one
		// batch cannot race with itself).
		for bi := range cur.Batches {
			for i := len(cur.Batches[bi]) - 1; i >= 0 && len(cur.Batches[bi]) > 1; i-- {
				c := cur.Clone()
				c.Batches[bi] = append(c.Batches[bi][:i], c.Batches[bi][i+1:]...)
				if still(c) {
					cur, changed = c, true
				}
			}
		}
		for bi := len(cur.Batches) - 1; bi >= 0 && len(cur.Batches) > 2; bi-- {
			c := cur.Clone()
			c.Batches = append(c.Batches[:bi], c.Batches[bi+1:]...)
			if still(c) {
				cur, changed = c, true
			}
		}

		// Entries.
		for i := len(cur.Table.Entries) - 1; i >= 0 && len(cur.Table.Entries) > 1; i-- {
			c := cur.Clone()
			c.Table.Entries = append(c.Table.Entries[:i], c.Table.Entries[i+1:]...)
			if still(c) {
				cur, changed = c, true
			}
		}

		// Attributes: project the table onto a smaller schema, keeping at
		// least one match field and one attribute overall. Projection
		// dedupes rows, so this can shrink the entry set too.
		for ai := len(cur.Table.Schema) - 1; ai >= 0 && len(cur.Table.Schema) > 2; ai-- {
			keep := mat.FullSet(len(cur.Table.Schema)).Remove(ai)
			fields := 0
			for _, i := range keep.Members() {
				if cur.Table.Schema[i].Kind == mat.Field {
					fields++
				}
			}
			if fields == 0 {
				continue
			}
			c := cur.Clone()
			c.Table = cur.Table.Project(cur.Table.Name, keep)
			c.Table.Provenance = cur.Table.Provenance
			if still(c) {
				cur, changed = c, true
			}
		}
	}
	return cur
}
