package difftest

import (
	"fmt"
	"math/rand"

	"manorm/internal/confluence"
	"manorm/internal/mat"
	"manorm/internal/netkat"
	"manorm/internal/openflow"
)

// GenerateConcurrent produces one seeded confluence case: a generated
// universal table as the base state plus two concurrent flow-mod batches
// drawn against it. The batches follow the same disjoint-or-equal
// per-column cell discipline as the base generator, so every reachable
// state is ambiguity-free (two rows overlap iff their match rows are
// identical) and the relational evaluator never errors — the interesting
// races are first-writer-wins key collisions and rejected mods, which
// the verifier must classify exactly as brute-force interleaving does.
func GenerateConcurrent(seed int64, cfg GenConfig) *Program {
	base := Generate(seed, cfg)
	rng := rand.New(rand.NewSource(seed + 0x5eed))
	t := base.Table
	pools := batchPools(rng, t)
	p := &Program{
		Seed:  seed,
		Note:  fmt.Sprintf("concurrent(seed=%d)", seed),
		Table: t,
	}
	p.Batches = [][]openflow.FlowMod{
		genBatch(rng, t, pools),
		genBatch(rng, t, pools),
	}
	return p
}

// colPool is one match column's candidate cells: the cells installed
// entries use plus fresh exact cells disjoint from all of them.
type colPool struct {
	idx      int
	name     string
	width    uint8
	existing []mat.Cell
	fresh    []mat.Cell
}

// batchPools builds the per-column cell pools the batch generator draws
// from. A column whose installed cells include a wildcard gets no fresh
// cells (nothing is disjoint from Any).
func batchPools(rng *rand.Rand, t *mat.Table) []colPool {
	var pools []colPool
	for _, fi := range t.Schema.Fields() {
		cp := colPool{idx: fi, name: t.Schema[fi].Name, width: t.Schema[fi].Width}
		seen := make(map[mat.Cell]bool)
		hasAny := false
		for _, e := range t.Entries {
			if !seen[e[fi]] {
				seen[e[fi]] = true
				cp.existing = append(cp.existing, e[fi])
				if e[fi].IsAny() {
					hasAny = true
				}
			}
		}
		if len(cp.existing) == 0 {
			cp.existing = append(cp.existing, mat.Any())
			hasAny = true
		}
		if !hasAny {
			for tries := 0; len(cp.fresh) < 3 && tries < 32; tries++ {
				c := mat.Exact(rng.Uint64()&mask(cp.width), cp.width)
				disjoint := true
				for _, o := range append(cp.existing, cp.fresh...) {
					if c.Overlaps(o, cp.width) {
						disjoint = false
						break
					}
				}
				if disjoint {
					cp.fresh = append(cp.fresh, c)
				}
			}
		}
		pools = append(pools, cp)
	}
	return pools
}

// genBatch draws one batch of 1–3 flow-mods: mods targeting installed
// entries (deletes, modifies, racing duplicate adds) and mods composing
// rows from the pools (mostly adds of fresh keys, sometimes deletes or
// modifies of keys that may not exist — deliberate rejection cases).
func genBatch(rng *rand.Rand, t *mat.Table, pools []colPool) []openflow.FlowMod {
	n := 1 + rng.Intn(3)
	batch := make([]openflow.FlowMod, 0, n)
	for k := 0; k < n; k++ {
		var match []openflow.MatchField
		onExisting := len(t.Entries) > 0 && rng.Float64() < 0.6
		if onExisting {
			e := t.Entries[rng.Intn(len(t.Entries))]
			for _, cp := range pools {
				match = append(match, openflow.MatchField{Name: cp.name, Width: cp.width, Cell: e[cp.idx]})
			}
		} else {
			for _, cp := range pools {
				cell := cp.existing[rng.Intn(len(cp.existing))]
				if len(cp.fresh) > 0 && rng.Float64() < 0.5 {
					cell = cp.fresh[rng.Intn(len(cp.fresh))]
				}
				match = append(match, openflow.MatchField{Name: cp.name, Width: cp.width, Cell: cell})
			}
		}
		var cmd openflow.FlowModCommand
		r := rng.Float64()
		if onExisting {
			switch {
			case r < 0.35:
				cmd = openflow.FlowDelete
			case r < 0.70:
				cmd = openflow.FlowModify
			default:
				cmd = openflow.FlowAdd // duplicate: a first-writer-wins race
			}
		} else {
			switch {
			case r < 0.70:
				cmd = openflow.FlowAdd
			case r < 0.85:
				cmd = openflow.FlowDelete // usually a rejection
			default:
				cmd = openflow.FlowModify // usually a rejection
			}
		}
		mod := openflow.FlowMod{Command: cmd, TableID: 0, Match: match}
		if cmd != openflow.FlowDelete {
			for _, ai := range t.Schema.Actions() {
				mod.Actions = append(mod.Actions, openflow.ActionField{
					Name:  t.Schema[ai].Name,
					Width: t.Schema[ai].Width,
					Value: rng.Uint64() & mask(t.Schema[ai].Width),
				})
			}
		}
		batch = append(batch, mod)
	}
	return batch
}

// PlantConfluencePair builds the canonical non-confluent case on the
// rematch-hazard table: two concurrent batches that each FlowAdd the
// same fresh (vlan, tcp_dst) key with different mod_vlan/out actions.
// Whichever add lands first wins — the second is rejected as a duplicate
// — so the two delivery orders converge to genuinely different programs.
// The verifier must flag it non-confluent and brute-force interleaving
// must agree the finals diverge (kind "non-confluent"); the committed
// reproducer keeps that detection under regression.
func PlantConfluencePair(seed int64) *Program {
	h := PlantRematchHazard(seed)
	t := h.Table
	rng := rand.New(rand.NewSource(seed + 0xace))
	usedVlan := make(map[uint64]bool)
	usedDst := make(map[uint64]bool)
	for _, e := range t.Entries {
		usedVlan[e[0].Bits] = true
		usedDst[e[1].Bits] = true
		usedVlan[e[2].Bits] = true // keep clear of the mod_vlan targets too
	}
	vlan := distinctValue(rng, 12, usedVlan)
	dst := distinctValue(rng, 16, usedDst)
	match := []openflow.MatchField{
		{Name: t.Schema[0].Name, Width: 12, Cell: mat.Exact(vlan, 12)},
		{Name: t.Schema[1].Name, Width: 16, Cell: mat.Exact(dst, 16)},
	}
	add := func(modVlan, out uint64) openflow.FlowMod {
		return openflow.FlowMod{
			Command: openflow.FlowAdd, TableID: 0,
			Match: append([]openflow.MatchField(nil), match...),
			Actions: []openflow.ActionField{
				{Name: "mod_vlan", Width: 12, Value: modVlan},
				{Name: "out", Width: 16, Value: out},
			},
		}
	}
	mv1 := distinctValue(rng, 12, usedVlan)
	mv2 := distinctValue(rng, 12, usedVlan)
	o1 := distinctValue(rng, 16, usedDst)
	o2 := distinctValue(rng, 16, usedDst)
	return &Program{
		Seed:    seed,
		Note:    fmt.Sprintf("confluence-pair(seed=%d)", seed),
		Table:   t,
		Batches: [][]openflow.FlowMod{{add(mv1, o1)}, {add(mv2, o2)}},
	}
}

// confluenceOptions is the budget ExecuteConfluence verifies with: small
// batches (≤ 3+3 mods, ≤ 20 interleavings) always enumerate
// exhaustively, and compensation is always checked.
func confluenceOptions(seed int64) confluence.Options {
	return confluence.Options{
		MaxOrderings:    64,
		SampleOrderings: 16,
		WitnessPackets:  512,
		Seed:            seed + 1,
		Compensation:    true,
	}
}

// ExecuteConfluence cross-checks the confluence verifier against
// brute-force interleaving: every ordering is applied independently and
// the final states are compared pairwise on the NetKAT oracle. The
// verdicts must agree directionally —
//
//   - verifier confluent + oracle counterexample between finals, or
//   - verifier non-confluent + all finals canonically identical, or
//   - a failed compensation rollback
//
// is a KindConfluence divergence (a verifier bug). A non-confluent
// verdict brute force confirms (the finals genuinely differ) is reported
// as KindNonConfluent: expected for racing updates, replayable from the
// corpus, and not a fuzz failure.
func ExecuteConfluence(p *Program, cfg ExecConfig) ([]Divergence, error) {
	cfg = cfg.withDefaults()
	base := mat.SingleTable(p.Table)
	v, err := confluence.Check(base, p.Batches, confluenceOptions(p.Seed))
	if err != nil {
		return nil, fmt.Errorf("difftest: confluence check: %w", err)
	}

	// Brute force, independent of the verifier's grouping and
	// fingerprinting: apply every interleaving, collect canonical states,
	// and compare finals on the oracle.
	sizes := make([]int, len(p.Batches))
	for i, b := range p.Batches {
		sizes[i] = len(b)
	}
	orders, exhaustive := confluence.Interleavings(sizes, 512, 32, p.Seed+2)
	finals := make([]*mat.Pipeline, len(orders))
	states := make(map[string]bool)
	for oi, order := range orders {
		q := mat.SingleTable(p.Table.Clone())
		pos := make([]int, len(p.Batches))
		for _, bi := range order {
			mod := p.Batches[bi][pos[bi]]
			_ = openflow.ApplyToPipeline(q, &mod) // rejected mods leave q untouched
			pos[bi]++
		}
		finals[oi] = q
		st, err := confluence.CanonicalState(q)
		if err != nil {
			return nil, err
		}
		states[st] = true
	}
	var cex *netkat.Counterexample
	for i := 1; i < len(finals); i++ {
		c, _, err := netkat.EquivalentPipelines(finals[0], finals[i], cfg.OracleExhaustive)
		if err != nil {
			return nil, fmt.Errorf("difftest: confluence oracle: %w", err)
		}
		if c != nil {
			cex = c
			break
		}
	}

	compFailed := v.Compensation != nil && !v.Compensation.OK
	orderingDivergence := !v.Confluent && !compFailed

	var divs []Divergence
	switch {
	case v.Confluent && cex != nil:
		divs = append(divs, Divergence{
			Kind: KindConfluence, Variant: "verifier", Packet: -1,
			Detail: fmt.Sprintf("verdict confluent (%d orderings, exhaustive=%v) but the oracle refutes it: %v",
				v.Orderings, v.Exhaustive, cex),
		})
	case orderingDivergence && len(states) == 1:
		divs = append(divs, Divergence{
			Kind: KindConfluence, Variant: "verifier", Packet: -1,
			Detail: fmt.Sprintf("verdict non-confluent but all %d brute-forced interleavings (exhaustive=%v) reach the identical state: %s",
				len(orders), exhaustive, v.Counterexample.Detail),
		})
	case orderingDivergence:
		divs = append(divs, Divergence{
			Kind: KindNonConfluent, Variant: "verifier", Packet: -1,
			Detail: v.Counterexample.Detail,
		})
	}
	if compFailed {
		divs = append(divs, Divergence{
			Kind: KindConfluence, Variant: "compensation", Packet: -1,
			Detail: fmt.Sprintf("compensation not well-founded: %s", v.Compensation.Detail),
		})
	}
	return divs, nil
}
