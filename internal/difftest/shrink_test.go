package difftest

import (
	"os"
	"path/filepath"
	"testing"
)

// shrinkKinds returns the divergence kind set of a program.
func shrinkKinds(t *testing.T, p *Program) map[string]bool {
	t.Helper()
	divs, err := Execute(p, DefaultExecConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]bool, len(divs))
	for _, d := range divs {
		out[d.Kind] = true
	}
	return out
}

// TestShrinkCaveat: shrinking a diverging program must keep it diverging
// with the same kind while making it strictly smaller.
func TestShrinkCaveat(t *testing.T) {
	p, err := PlantCaveat(1, DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	before := shrinkKinds(t, p)
	if len(before) == 0 {
		t.Fatalf("planted program does not diverge:\n%s", p.Table)
	}
	s := Shrink(p, DefaultExecConfig())
	after := shrinkKinds(t, s)
	if len(after) == 0 {
		t.Fatalf("shrunk program no longer diverges:\n%s", s.Table)
	}
	overlap := false
	for k := range after {
		if before[k] {
			overlap = true
		}
	}
	if !overlap {
		t.Fatalf("shrink changed the divergence kind: %v -> %v", before, after)
	}
	if s.Size() >= p.Size() {
		t.Fatalf("shrink did not reduce the program: %d -> %d", p.Size(), s.Size())
	}
	if len(s.Packets) < 1 || len(s.Table.Entries) < 1 {
		t.Fatalf("shrink emptied the program: %d packets, %d entries", len(s.Packets), len(s.Table.Entries))
	}
}

// TestShrinkCleanIsIdentity: a program with no divergence passes through
// Shrink untouched.
func TestShrinkCleanIsIdentity(t *testing.T) {
	p := Generate(2, DefaultGenConfig())
	s := Shrink(p, DefaultExecConfig())
	if s != p {
		t.Fatal("shrink modified a clean program")
	}
}

// TestShrinkWriteReplay covers the full reproducer lifecycle the fuzzing
// loop performs on a divergence: shrink, write to a corpus directory,
// read back, replay — and the replay must still diverge.
func TestShrinkWriteReplay(t *testing.T) {
	p, err := PlantCaveat(2, DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	divs, err := Execute(p, DefaultExecConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(divs) == 0 {
		t.Fatal("planted program does not diverge")
	}
	s := Shrink(p, DefaultExecConfig())

	dir := t.TempDir()
	path, err := WriteCorpus(dir, s, divs[0].Kind)
	if err != nil {
		t.Fatal(err)
	}
	replayed, kind, err := Replay(path, DefaultExecConfig())
	if err != nil {
		t.Fatal(err)
	}
	if kind != divs[0].Kind {
		t.Fatalf("recorded kind %q, want %q", kind, divs[0].Kind)
	}
	found := false
	for _, d := range replayed {
		if d.Kind == kind {
			found = true
		}
	}
	if !found {
		t.Fatalf("replayed corpus file lost its %q divergence: %v", kind, replayed)
	}
}

// TestReplayCommittedCorpus replays every reproducer committed under
// testdata/corpus: each must still produce a divergence of its recorded
// kind. This is the regression net over previously found bugs (and over
// the deliberately planted caveat demos).
func TestReplayCommittedCorpus(t *testing.T) {
	files, err := CorpusFiles(filepath.Join("testdata", "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no committed corpus files — the caveat reproducers should be checked in")
	}
	for _, f := range files {
		divs, kind, err := Replay(f, DefaultExecConfig())
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if kind == "" {
			t.Fatalf("%s: no recorded divergence kind", f)
		}
		found := false
		for _, d := range divs {
			if d.Kind == kind {
				found = true
			}
		}
		if !found {
			b, _ := os.ReadFile(f)
			t.Fatalf("%s: recorded kind %q not reproduced (got %v)\n%s", f, kind, divs, b)
		}
	}
}
