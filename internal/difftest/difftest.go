// Package difftest is the differential fuzzing subsystem: it generates
// random match-action programs, enumerates every representation the
// normalization machinery can produce for them (the universal table, the
// full 3NF pipelines under the metadata and goto joins, and one-step
// decompositions along every mined dependency), executes all of them on
// all four switch models, and cross-checks the outputs packet by packet —
// against each other, against the relational semantics, against the
// finite-domain NetKAT oracle where widths permit, and against the
// per-packet trace witnesses.
//
// By the paper's Theorem 1 every representation of a 1NF table is
// semantically equivalent, so for a well-formed generated program *any*
// disagreement is a bug — in the normalizer, in a classifier, in a flow
// cache, or in the harness's own understanding of the semantics. The
// generator also knows how to plant the paper's Fig. 3 caveat (a
// decomposition along an action-to-match dependency, which core.Decompose
// rightly refuses): executing the hand-built forbidden pipeline must
// produce a divergence, which the shrinker minimizes into a replayable
// corpus file. cmd/mafuzz drives the loop; the corpus under
// testdata/corpus is replayed by the regression tests and by CI.
package difftest

import (
	"fmt"

	"manorm/internal/core"
	"manorm/internal/mat"
	"manorm/internal/packet"
	"manorm/internal/switches"
)

// Program is one differential test case: a universal table plus the
// packet batch to drive through every representation of it.
type Program struct {
	// Seed is the generator seed the program came from (0 for hand-built
	// or corpus-loaded programs).
	Seed int64
	// Note is a human-readable provenance tag ("gen(seed=42)",
	// "fig3-caveat(seed=7)", ...).
	Note string
	// Caveat attaches the hand-built Fig. 3 decomposition (see
	// CaveatPipeline) as an extra variant. It is part of the program, not
	// the executor config, so that shrinking and corpus replay preserve
	// it.
	Caveat bool
	// Table is the universal (single-table, 1NF) program.
	Table *mat.Table
	// Packets is the input batch. Packets are full-stack
	// Ethernet/VLAN/IPv4/TCP frames so the relational record and the
	// parsed wire frame agree on every canonical field.
	Packets []*packet.Packet
	// Graph, when non-nil, puts the program in schema mode: the table is
	// written against the graph's header schema and the input batch is
	// Frames (decoded through the compiled graph), not Packets. Generated
	// by GenerateSchema and PlantSchemaHazard.
	Graph *packet.ParseGraph
	// Frames is the schema-mode input batch as wire frames; every
	// executor parses its own view from the bytes, as a real datapath
	// would.
	Frames [][]byte
}

// SchemaMode reports whether the program is driven through a custom
// header schema (Graph/Frames) rather than the canonical Packet batch.
func (p *Program) SchemaMode() bool { return p.Graph != nil }

// NumInputs returns the input batch length in either mode.
func (p *Program) NumInputs() int {
	if p.SchemaMode() {
		return len(p.Frames)
	}
	return len(p.Packets)
}

// Clone deep-copies the program. The parse graph is shared: it is
// immutable after construction.
func (p *Program) Clone() *Program {
	q := &Program{Seed: p.Seed, Note: p.Note, Caveat: p.Caveat, Table: p.Table.Clone(), Graph: p.Graph}
	q.Packets = make([]*packet.Packet, len(p.Packets))
	for i, pk := range p.Packets {
		c := *pk
		c.Payload = append([]byte(nil), pk.Payload...)
		q.Packets[i] = &c
	}
	if p.Frames != nil {
		q.Frames = make([][]byte, len(p.Frames))
		for i, f := range p.Frames {
			q.Frames[i] = append([]byte(nil), f...)
		}
	}
	return q
}

// Size is the shrink metric: schema attributes + entries + inputs. The
// shrinker only accepts candidates that strictly decrease it.
func (p *Program) Size() int {
	return len(p.Table.Schema) + len(p.Table.Entries) + p.NumInputs()
}

// Divergence kinds, roughly ordered by layer.
const (
	// KindConstruct: building or installing a representation failed where
	// it must not (Variants, CaveatPipeline, dataplane.Compile, Install).
	KindConstruct = "construct"
	// KindEval: an evaluator reported a runtime error — almost always the
	// ambiguous-match error, i.e. an order-independence (1NF) violation
	// observable at runtime. This is how the planted Fig. 3 decomposition
	// announces itself under the relational semantics.
	KindEval = "eval-error"
	// KindRelational: a variant's relational (mat.Eval) observable output
	// differs from the universal table's on some packet.
	KindRelational = "relational"
	// KindOracle: the finite-domain NetKAT oracle found a diverging probe
	// packet (possibly one no generated packet covered).
	KindOracle = "oracle"
	// KindVerdict: a compiled representation's verdict (drop/output port)
	// on a switch model differs from the relational ground truth.
	KindVerdict = "verdict"
	// KindMutation: the dataplane's final header rewrites differ from the
	// action attributes the relational semantics assigned.
	KindMutation = "mutation"
	// KindWitness: a ProcessExplain trace witness is inconsistent with
	// the verdict it explains.
	KindWitness = "witness"
	// KindCache: a switch model changed its verdict between a cold and a
	// warm run of the same batch — a flow-cache replay bug.
	KindCache = "cache"
)

// Divergence is one detected disagreement between representations.
type Divergence struct {
	// Kind is one of the Kind* constants.
	Kind string
	// Variant names the representation that disagreed ("universal",
	// "nf3-metadata", "dec(...)/goto", "fig3-caveat", ...).
	Variant string
	// Model is the switch model involved, "dataplane" for the directly
	// compiled pipeline, or "" for relational/oracle checks.
	Model string
	// Packet is the index into Program.Packets, or -1 when the check is
	// not tied to a generated packet (oracle probes, construction).
	Packet int
	// Detail is a human-readable description of the disagreement.
	Detail string
}

// String renders the divergence on one line.
func (d Divergence) String() string {
	where := d.Variant
	if d.Model != "" {
		where += "@" + d.Model
	}
	if d.Packet >= 0 {
		return fmt.Sprintf("[%s] %s pkt %d: %s", d.Kind, where, d.Packet, d.Detail)
	}
	return fmt.Sprintf("[%s] %s: %s", d.Kind, where, d.Detail)
}

// ExecConfig controls how much cross-checking Execute performs per
// program.
type ExecConfig struct {
	// Models lists the switch models to execute on; nil means all four.
	Models []string
	// Target is the normal form Variants normalizes to (default 3NF).
	Target core.Form
	// OracleExhaustive is the largest probe-domain size the NetKAT oracle
	// enumerates exhaustively ("where widths permit").
	OracleExhaustive int
	// OracleSample is the probe count for sampled oracle checks when the
	// domain is too large to enumerate; 0 skips those domains.
	OracleSample int
	// MaxDivergences stops the executor early once this many divergences
	// accumulated (a broken program tends to diverge everywhere at once).
	MaxDivergences int
}

// DefaultExecConfig is the configuration mafuzz and the tests run with.
func DefaultExecConfig() ExecConfig {
	return ExecConfig{
		Models:           switches.ModelNames(),
		Target:           core.NF3,
		OracleExhaustive: 4096,
		OracleSample:     128,
		MaxDivergences:   16,
	}
}

func (c ExecConfig) withDefaults() ExecConfig {
	if c.Models == nil {
		c.Models = switches.ModelNames()
	}
	if c.Target == 0 {
		c.Target = core.NF3
	}
	if c.MaxDivergences <= 0 {
		c.MaxDivergences = 16
	}
	return c
}
