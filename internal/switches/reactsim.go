package switches

import (
	"math/rand"

	"manorm/internal/stats"
)

// ReactiveSimConfig drives the discrete-time reactiveness simulation: a
// traffic generator offering line rate against a switch whose forwarding
// engine is periodically stalled by control-plane table writes (the TCAM
// reorganization of the NoviFlow model). This makes the Fig. 4 curves
// *emergent* — throughput loss comes out of the event timeline rather
// than a closed-form expression (ReactiveThroughput provides the closed
// form for cross-checking).
//
// During a stall the switch *drops* at ingress beyond a small buffer —
// packets racing an in-progress atomic table write miss, they do not
// queue. This is the behavior consistent with both halves of the paper's
// Fig. 4: throughput collapses under churn while the latency of the
// packets that do get through stays pinned to the pipeline depth
// ("minor latency increase ... mostly independently from the control
// plane churn").
type ReactiveSimConfig struct {
	// DurationSec is the simulated time span.
	DurationSec float64
	// UpdateRate is service updates per second; each update issues
	// ModsPerUpdate flow-mods against a stage of StageEntries entries.
	UpdateRate    float64
	ModsPerUpdate int
	StageEntries  int
	// BufferPkts is the small ingress buffer that survives a stall;
	// everything beyond it is dropped while the tables are being
	// rewritten.
	BufferPkts int
	// TablesTraversed feeds the pipeline-depth latency term.
	TablesTraversed float64
	// Jitter randomizes update spacing by ±25% (seeded; 0 disables).
	JitterSeed int64
	// UpdateLatencyNs is the control-channel delay between the controller
	// issuing an update and the switch committing it (RPC latency plus
	// retries, as measured by the fault-injection experiments). It shifts
	// every stall later by that delay, and because the control channel
	// serializes updates it also caps the applied update rate: when the
	// delay exceeds the update period, updates queue behind the channel
	// and stalls space out at the channel latency instead.
	UpdateLatencyNs float64
}

// DefaultReactiveSim mirrors the measurement setup: 10 simulated seconds,
// a 128-packet ingress buffer (≈12 µs at line rate).
func DefaultReactiveSim(updRate float64, mods, entries int, tables float64) ReactiveSimConfig {
	return ReactiveSimConfig{
		DurationSec:     10,
		UpdateRate:      updRate,
		ModsPerUpdate:   mods,
		StageEntries:    entries,
		BufferPkts:      128,
		TablesTraversed: tables,
		JitterSeed:      1,
	}
}

// ReactiveSimResult reports the emergent performance.
type ReactiveSimResult struct {
	// RateMpps is delivered throughput (offered = line rate).
	RateMpps float64
	// DeliveredFrac is delivered/offered.
	DeliveredFrac float64
	// DelayP75Us is the 3rd-quartile latency of *delivered* packets in
	// microseconds.
	DelayP75Us float64
	// Stalls is the number of distinct stall periods simulated.
	Stalls int
	// UpdatesApplied is the number of updates that committed within the
	// simulated span; below UpdateRate·DurationSec when the control
	// channel cannot sustain the offered rate.
	UpdatesApplied int
}

// SimulateReactive runs the fluid-flow event simulation on the hardware
// model's constants.
func (s *NoviFlow) SimulateReactive(cfg ReactiveSimConfig) ReactiveSimResult {
	pm := s.Perf()
	lineNsPerPkt := 1000 / pm.HWLineRateMpps
	stallPerUpdateNs := float64(cfg.ModsPerUpdate) * (pm.ModStallNsBase + pm.ModStallNsPerEntry*float64(cfg.StageEntries))
	baseLatency := s.ReactiveLatency(cfg.TablesTraversed)

	durationNs := cfg.DurationSec * 1e9
	var rng *rand.Rand
	if cfg.JitterSeed != 0 {
		rng = rand.New(rand.NewSource(cfg.JitterSeed))
	}

	// Build the stall timeline (merging back-to-back stalls).
	type stall struct{ start, end float64 }
	var stalls []stall
	updatesApplied := 0
	if cfg.UpdateRate > 0 {
		period := 1e9 / cfg.UpdateRate
		if cfg.UpdateLatencyNs > period {
			// The channel serializes updates: they queue behind each other
			// and commit at channel-latency spacing, not the offered rate.
			period = cfg.UpdateLatencyNs
		}
		for t := period; t < durationNs; t += period {
			start := t + cfg.UpdateLatencyNs
			if rng != nil {
				start += (rng.Float64() - 0.5) * 0.5 * period
			}
			end := start + stallPerUpdateNs
			if end > durationNs {
				end = durationNs
			}
			if start >= durationNs {
				break
			}
			updatesApplied++
			if n := len(stalls); n > 0 && start <= stalls[n-1].end {
				if end > stalls[n-1].end {
					stalls[n-1].end = end
				}
				continue
			}
			stalls = append(stalls, stall{start, end})
		}
	}

	// Packet-weighted latency sampling: one sample per quantum of
	// delivered packets, so stall survivors and steady-state packets are
	// weighted by how many of them there are.
	offered := durationNs / lineNsPerPkt
	quantum := offered / 5000
	if quantum < 1 {
		quantum = 1
	}
	lat := stats.NewReservoir(8192, 2)
	var sampleAcc float64
	addSamples := func(count, latencyNs float64) {
		sampleAcc += count
		for sampleAcc >= quantum {
			lat.Add(latencyNs)
			sampleAcc -= quantum
		}
	}

	buffered := 0.0 // packets held across a stall
	delivered := 0.0
	cursor := 0.0
	bufCap := float64(cfg.BufferPkts)

	for si := 0; si <= len(stalls); si++ {
		// Clean segment before this stall (or the tail).
		segEnd := durationNs
		if si < len(stalls) {
			segEnd = stalls[si].start
		}
		dt := segEnd - cursor
		if dt > 0 {
			capacity := dt / lineNsPerPkt
			arriving := capacity
			// Drain the survivors first; they waited for the stall to
			// end.
			drained := buffered
			if drained > capacity {
				drained = capacity
			}
			delivered += drained
			buffered -= drained
			capacity -= drained
			served := arriving
			if served > capacity {
				buffered += served - capacity
				served = capacity
			}
			delivered += served
			addSamples(served, baseLatency)
		}
		if si == len(stalls) {
			break
		}
		st := stalls[si]
		// Stall: the first bufCap arrivals survive (and depart after the
		// stall, having waited roughly its remaining length); the rest
		// drop.
		arriving := (st.end - st.start) / lineNsPerPkt
		room := bufCap - buffered
		if room < 0 {
			room = 0
		}
		survivors := arriving
		if survivors > room {
			survivors = room
		}
		buffered += survivors
		addSamples(survivors, baseLatency+(st.end-st.start))
		cursor = st.end
	}

	return ReactiveSimResult{
		RateMpps:       delivered / durationNs * 1000,
		DeliveredFrac:  delivered / offered,
		DelayP75Us:     lat.Quantile(0.75) / 1000,
		Stalls:         len(stalls),
		UpdatesApplied: updatesApplied,
	}
}
