package switches

import (
	"fmt"

	"manorm/internal/classifier"
	"manorm/internal/dataplane"
	"manorm/internal/mat"
	"manorm/internal/packet"
)

// OVS models Open vSwitch's datapath architecture: a slow path that
// interprets the installed multi-table pipeline (tuple space search per
// table, as in ovs-vswitchd) and a single flat flow cache consulted first.
// A cache hit costs one hash probe no matter how the pipeline was
// represented — which is why the paper finds OVS agnostic to
// normalization (§5: "the datapath collapses OpenFlow tables into a
// single flow cache; in other words, OVS explicitly denormalizes the
// pipeline").
//
// The cache here is a microflow cache (OVS's EMC): exact on the headers
// the workloads vary. Control-plane updates invalidate it (revalidation).
type OVS struct {
	slow *dataplane.Pipeline
	ctx  *dataplane.Ctx
	// cache is the first-level exact-match cache (EMC).
	cache map[ovsKey]ovsHit
	// mega is the second-level masked cache (the megaflow cache), filled
	// from slow-path wildcard traces.
	mega  *megaflowCache
	trace *dataplane.Trace
	// Misses, Hits and MegaHits count per-layer cache behavior for the
	// experiment logs (Misses = slow-path traversals).
	Misses, Hits, MegaHits uint64
	scratch                packet.Packet
}

type ovsKey struct {
	src, dst   uint32
	sport      uint16
	dport      uint16
	ethType    uint16
	vlan       uint16
	proto, ttl uint8
}

type ovsHit struct {
	verdict dataplane.Verdict
}

// ovsCacheMax bounds the cache like the EMC's fixed size; beyond it, new
// flows evict nothing and take the slow path (a simple, honest policy).
const ovsCacheMax = 1 << 15

// NewOVS creates an unprogrammed OVS model.
func NewOVS() *OVS { return &OVS{} }

// Name returns "ovs".
func (s *OVS) Name() string { return "ovs" }

// Install programs the slow path and flushes the cache.
func (s *OVS) Install(p *mat.Pipeline) error {
	dp, err := dataplane.Compile(p, dataplane.FixedTemplate(classifier.ForceTupleSpace))
	if err != nil {
		return fmt.Errorf("ovs: %w", err)
	}
	s.slow = dp
	s.ctx = dp.NewCtx()
	s.cache = make(map[ovsKey]ovsHit, 4096)
	s.mega = newMegaflowCache()
	s.trace = dataplane.NewTrace()
	s.Misses, s.Hits, s.MegaHits = 0, 0, 0
	return nil
}

func keyOf(p *packet.Packet) ovsKey {
	return ovsKey{
		src: p.IPSrc, dst: p.IPDst,
		sport: p.SrcPort, dport: p.DstPort,
		ethType: p.EthType, vlan: p.VLANID,
		proto: p.Proto, ttl: p.TTL,
	}
}

// Process consults the EMC, then the megaflow cache, then the slow path —
// the OVS datapath lookup chain. Slow-path traversals trace the consulted
// header bits and install a megaflow covering every microflow that agrees
// on them.
//
// Caveat, as in the real caches: cached entries replay the *verdict* (port
// or drop), so the model is exact for forwarding workloads;
// header-rewriting actions are applied only on the slow path. The
// benchmark workloads (gateway & load balancer) are pure forwarding.
func (s *OVS) Process(pkt *packet.Packet) (dataplane.Verdict, error) {
	k := keyOf(pkt)
	if hit, ok := s.cache[k]; ok {
		s.Hits++
		return hit.verdict, nil
	}
	if v, ok := s.mega.lookup(pkt); ok {
		s.MegaHits++
		if len(s.cache) < ovsCacheMax {
			s.cache[k] = ovsHit{verdict: v}
		}
		return v, nil
	}
	s.Misses++
	v, err := s.slow.ProcessTraced(pkt, s.ctx, s.trace)
	if err != nil {
		return v, err
	}
	s.mega.insert(pkt, s.trace, v)
	if len(s.cache) < ovsCacheMax {
		s.cache[k] = ovsHit{verdict: v}
	}
	return v, nil
}

// ApplyMods triggers revalidation: both cache layers are flushed.
func (s *OVS) ApplyMods(int) error {
	for k := range s.cache {
		delete(s.cache, k)
	}
	s.mega.flush()
	return nil
}

// Perf returns the latency calibration (see ESwitch.Perf for the formula).
func (s *OVS) Perf() PerfModel {
	return PerfModel{BaseLatencyNs: 400_000, QueueFactor: 500}
}

// CacheSize reports the number of cached exact-match flows (EMC).
func (s *OVS) CacheSize() int { return len(s.cache) }

// MegaflowCount reports the number of cached megaflows.
func (s *OVS) MegaflowCount() int { return s.mega.Entries }

// Counters snapshots a stage's per-entry packet counters.
func (s *OVS) Counters(stage int) []uint64 {
	return s.slow.Counters(stage)
}

// ProcessFrame parses the frame into the model's scratch packet and
// forwards it; malformed frames drop.
func (s *OVS) ProcessFrame(frame []byte) (dataplane.Verdict, error) {
	if err := s.scratch.ParseInto(frame); err != nil {
		return dataplane.Verdict{Drop: true}, nil
	}
	return s.Process(&s.scratch)
}
