package switches

import (
	"fmt"
	"sync"
	"sync/atomic"

	"manorm/internal/classifier"
	"manorm/internal/dataplane"
	"manorm/internal/mat"
	"manorm/internal/packet"
)

// OVS models Open vSwitch's datapath architecture: a slow path that
// interprets the installed multi-table pipeline (tuple space search per
// table, as in ovs-vswitchd) and per-worker flow caches consulted first.
// A cache hit costs one hash probe no matter how the pipeline was
// represented — which is why the paper finds OVS agnostic to
// normalization (§5: "the datapath collapses OpenFlow tables into a
// single flow cache; in other words, OVS explicitly denormalizes the
// pipeline").
//
// Sharding mirrors the real datapath's per-PMD-thread design: every
// worker owns a private EMC (exact-match microflow cache) and megaflow
// cache, filled independently from the shared immutable slow path.
// Control-plane updates bump a revalidation epoch; each worker notices the
// stale epoch on its next frame and flushes its shard — no locks anywhere
// on the forwarding path. The layer-hit statistics are shared atomics.
type OVS struct {
	// slow is the compiled slow-path pipeline, swapped atomically on
	// Install; workers pick up the new program on their next frame.
	slow atomic.Pointer[dataplane.Pipeline]
	// epoch is the revalidation generation: ApplyMods increments it, and a
	// worker whose local epoch lags flushes both cache layers.
	epoch atomic.Uint64
	// Misses, Hits and MegaHits count per-layer cache behavior for the
	// experiment logs (Misses = slow-path traversals), aggregated over all
	// workers.
	Misses, Hits, MegaHits atomic.Uint64
	// prim is the worker behind the single-threaded packet-level Process
	// API and the cache-size inspectors.
	prim *ovsWorker
	pool sync.Pool
}

type ovsKey struct {
	src, dst   uint32
	sport      uint16
	dport      uint16
	ethType    uint16
	vlan       uint16
	proto, ttl uint8
}

type ovsHit struct {
	verdict dataplane.Verdict
}

// ovsCacheMax bounds each EMC shard like the real EMC's fixed size;
// beyond it, new flows evict nothing and take the megaflow/slow path (a
// simple, honest policy).
const ovsCacheMax = 1 << 15

// NewOVS creates an unprogrammed OVS model.
func NewOVS() *OVS {
	s := &OVS{}
	s.prim = s.newOVSWorker()
	return s
}

// Name returns "ovs".
func (s *OVS) Name() string { return "ovs" }

// Install programs the slow path, resets the statistics and invalidates
// every worker's caches (the pipeline pointer swap itself is the
// invalidation signal; the fresh primary worker starts empty).
func (s *OVS) Install(p *mat.Pipeline) error {
	dp, err := dataplane.Compile(p, dataplane.FixedTemplate(classifier.ForceTupleSpace))
	if err != nil {
		return fmt.Errorf("ovs: %w", err)
	}
	s.slow.Store(dp)
	s.prim = s.newOVSWorker()
	s.Misses.Store(0)
	s.Hits.Store(0)
	s.MegaHits.Store(0)
	return nil
}

func keyOf(p *packet.Packet) ovsKey {
	return ovsKey{
		src: p.IPSrc, dst: p.IPDst,
		sport: p.SrcPort, dport: p.DstPort,
		ethType: p.EthType, vlan: p.VLANID,
		proto: p.Proto, ttl: p.TTL,
	}
}

// ovsWorker is one datapath shard: private EMC + megaflow cache, scratch
// packet, slow-path registers and wildcard trace buffer.
type ovsWorker struct {
	parent *OVS
	slow   *dataplane.Pipeline
	epoch  uint64
	ctx    *dataplane.Ctx
	trace  *dataplane.Trace
	cache  map[ovsKey]ovsHit
	mega   *megaflowCache
	// cacheable mirrors the real per-PMD accounting: scratch packet reused
	// across frames.
	scratch packet.Packet
}

func (s *OVS) newOVSWorker() *ovsWorker {
	return &ovsWorker{
		parent: s,
		trace:  dataplane.NewTrace(),
		cache:  make(map[ovsKey]ovsHit, 4096),
		mega:   newMegaflowCache(),
	}
}

func (w *ovsWorker) flush() {
	for k := range w.cache {
		delete(w.cache, k)
	}
	w.mega.flush()
}

// refresh revalidates the shard: a swapped slow path or a bumped epoch
// flushes the local caches; a swapped slow path also re-provisions the
// metadata registers.
func (w *ovsWorker) refresh() (*dataplane.Pipeline, error) {
	slow := w.parent.slow.Load()
	if slow == nil {
		return nil, errNotProgrammed
	}
	if slow != w.slow {
		w.slow = slow
		w.ctx = slow.NewCtx()
		w.flush()
	}
	if e := w.parent.epoch.Load(); e != w.epoch {
		w.epoch = e
		w.flush()
	}
	return slow, nil
}

// process consults the EMC, then the megaflow cache, then the slow path —
// the OVS datapath lookup chain — accumulating layer hits into the given
// counters (flushed to the shared atomics by the callers, per frame or per
// batch). Slow-path traversals trace the consulted header bits and install
// a megaflow covering every microflow that agrees on them.
//
// Caveat, as in the real caches: cached entries replay the *verdict* (port
// or drop), so the model is exact for forwarding workloads;
// header-rewriting actions are applied only on the slow path. The
// benchmark workloads (gateway & load balancer) are pure forwarding.
func (w *ovsWorker) process(slow *dataplane.Pipeline, pkt *packet.Packet, hits, megaHits, misses *uint64) (dataplane.Verdict, error) {
	k := keyOf(pkt)
	if hit, ok := w.cache[k]; ok {
		*hits++
		return hit.verdict, nil
	}
	if v, ok := w.mega.lookup(pkt); ok {
		*megaHits++
		if len(w.cache) < ovsCacheMax {
			w.cache[k] = ovsHit{verdict: v}
		}
		return v, nil
	}
	*misses++
	v, err := slow.ProcessTraced(pkt, w.ctx, w.trace)
	if err != nil {
		return v, err
	}
	w.mega.insert(pkt, w.trace, v)
	if len(w.cache) < ovsCacheMax {
		w.cache[k] = ovsHit{verdict: v}
	}
	return v, nil
}

// addStats flushes accumulated layer counts to the shared atomics.
func (w *ovsWorker) addStats(hits, megaHits, misses uint64) {
	if hits > 0 {
		w.parent.Hits.Add(hits)
	}
	if megaHits > 0 {
		w.parent.MegaHits.Add(megaHits)
	}
	if misses > 0 {
		w.parent.Misses.Add(misses)
	}
}

// ProcessFrame parses into the shard's scratch packet and forwards.
func (w *ovsWorker) ProcessFrame(frame []byte) (dataplane.Verdict, error) {
	slow, err := w.refresh()
	if err != nil {
		return dataplane.Verdict{}, err
	}
	if err := w.scratch.ParseInto(frame); err != nil {
		return dataplane.Verdict{Drop: true}, nil
	}
	var hits, megaHits, misses uint64
	v, err := w.process(slow, &w.scratch, &hits, &megaHits, &misses)
	w.addStats(hits, megaHits, misses)
	return v, err
}

// ProcessBatch forwards a frame batch with one revalidation check and one
// statistics flush for the whole batch.
func (w *ovsWorker) ProcessBatch(frames [][]byte, out []dataplane.Verdict) error {
	if len(out) < len(frames) {
		return fmt.Errorf("switches: verdict buffer %d too small for batch of %d", len(out), len(frames))
	}
	slow, err := w.refresh()
	if err != nil {
		return err
	}
	var hits, megaHits, misses uint64
	for i, f := range frames {
		if err := w.scratch.ParseInto(f); err != nil {
			out[i] = dataplane.Verdict{Drop: true}
			continue
		}
		v, err := w.process(slow, &w.scratch, &hits, &megaHits, &misses)
		if err != nil {
			w.addStats(hits, megaHits, misses)
			return err
		}
		out[i] = v
	}
	w.addStats(hits, megaHits, misses)
	return nil
}

func (s *OVS) getWorker() *ovsWorker {
	if w, ok := s.pool.Get().(*ovsWorker); ok {
		return w
	}
	return s.newOVSWorker()
}

// ProcessFrame checks a worker shard out of the pool and forwards one
// frame. Safe for concurrent use.
func (s *OVS) ProcessFrame(frame []byte) (dataplane.Verdict, error) {
	w := s.getWorker()
	v, err := w.ProcessFrame(frame)
	s.pool.Put(w)
	return v, err
}

// ProcessBatch checks a worker shard out of the pool and forwards a frame
// batch. Safe for concurrent use.
func (s *OVS) ProcessBatch(frames [][]byte, out []dataplane.Verdict) error {
	w := s.getWorker()
	err := w.ProcessBatch(frames, out)
	s.pool.Put(w)
	return err
}

// NewWorker returns a dedicated datapath shard (its own EMC and megaflow
// cache) for one forwarding goroutine — the model's PMD thread.
func (s *OVS) NewWorker() Worker { return s.newOVSWorker() }

// Process forwards one packet through the primary shard (single-threaded
// convenience; the cache inspectors below report this shard's state).
func (s *OVS) Process(pkt *packet.Packet) (dataplane.Verdict, error) {
	slow, err := s.prim.refresh()
	if err != nil {
		return dataplane.Verdict{}, err
	}
	var hits, megaHits, misses uint64
	v, err := s.prim.process(slow, pkt, &hits, &megaHits, &misses)
	s.prim.addStats(hits, megaHits, misses)
	return v, err
}

// ApplyMods triggers revalidation: the primary shard is flushed eagerly,
// and every other worker flushes on its next frame via the epoch bump.
func (s *OVS) ApplyMods(int) error {
	s.epoch.Add(1)
	s.prim.epoch = s.epoch.Load()
	s.prim.flush()
	return nil
}

// Perf returns the latency calibration (see ESwitch.Perf for the formula).
func (s *OVS) Perf() PerfModel {
	return PerfModel{BaseLatencyNs: 400_000, QueueFactor: 500}
}

// CacheSize reports the number of cached exact-match flows (EMC) in the
// primary shard.
func (s *OVS) CacheSize() int { return len(s.prim.cache) }

// MegaflowCount reports the number of cached megaflows in the primary
// shard.
func (s *OVS) MegaflowCount() int { return s.prim.mega.Entries }

// Counters snapshots a stage's per-entry packet counters.
func (s *OVS) Counters(stage int) []uint64 {
	dp := s.slow.Load()
	if dp == nil {
		return nil
	}
	return dp.Counters(stage)
}
