package switches

import (
	"fmt"
	"sync"
	"sync/atomic"

	"manorm/internal/classifier"
	"manorm/internal/dataplane"
	"manorm/internal/mat"
	"manorm/internal/packet"
	"manorm/internal/telemetry"
)

// OVS models Open vSwitch's datapath architecture: a slow path that
// interprets the installed multi-table pipeline (tuple space search per
// table, as in ovs-vswitchd) and per-worker flow caches consulted first.
// A cache hit costs one hash probe no matter how the pipeline was
// represented — which is why the paper finds OVS agnostic to
// normalization (§5: "the datapath collapses OpenFlow tables into a
// single flow cache; in other words, OVS explicitly denormalizes the
// pipeline").
//
// Sharding mirrors the real datapath's per-PMD-thread design: every
// worker owns a private EMC (exact-match microflow cache) and megaflow
// cache, filled independently from the shared immutable slow path.
// Control-plane updates bump a revalidation epoch; each worker notices the
// stale epoch on its next frame and flushes its shard — no locks anywhere
// on the forwarding path. The layer-hit statistics are shared atomics.
type OVS struct {
	// slow is the compiled slow-path pipeline, swapped atomically on
	// Install; workers pick up the new program on their next frame.
	slow atomic.Pointer[dataplane.Pipeline]
	// epoch is the revalidation generation: ApplyMods increments it, and a
	// worker whose local epoch lags flushes both cache layers.
	epoch atomic.Uint64
	// Misses, Hits and MegaHits count per-layer cache behavior (Misses =
	// slow-path traversals), aggregated over all workers.
	//
	// Deprecated: read these through Stats() ("emc_hits", "megaflow_hits",
	// "slow_misses") — the unified telemetry surface. The fields remain
	// exported so existing callers keep compiling.
	Misses, Hits, MegaHits atomic.Uint64
	// prim is the worker behind the single-threaded packet-level Process
	// API and the cache-size inspectors.
	prim *ovsWorker
	pool sync.Pool
	// reg is the optional metrics registry (WithTelemetry).
	reg *telemetry.Registry
	// dec is the schema-mode decoder (WithSchema). The EMC key and the
	// megaflow classifier are hardwired to the canonical header fields, so
	// schema-mode shards skip both layers and take the slow path for every
	// frame — modeling a datapath whose caches cannot key on the custom
	// protocol.
	dec *packet.Decoder
}

type ovsKey struct {
	src, dst   uint32
	sport      uint16
	dport      uint16
	ethType    uint16
	vlan       uint16
	proto, ttl uint8
}

type ovsHit struct {
	verdict dataplane.Verdict
}

// ovsCacheMax bounds each EMC shard like the real EMC's fixed size;
// beyond it, new flows evict nothing and take the megaflow/slow path (a
// simple, honest policy).
const ovsCacheMax = 1 << 15

// NewOVS creates an unprogrammed OVS model. With WithTelemetry, the
// cache-layer view (hits per layer, entry counts, hit ratio) is folded
// into the registry as gauge functions reading the shared atomics — zero
// added cost on the forwarding path.
func NewOVS(opts ...Option) *OVS {
	s := &OVS{}
	cfg := buildCfg(opts)
	s.reg, s.dec = cfg.reg, cfg.dec
	s.prim = s.newOVSWorker()
	if s.reg != nil {
		s.reg.GaugeFunc("ovs.emc_hits", func() float64 { return float64(s.Hits.Load()) })
		s.reg.GaugeFunc("ovs.megaflow_hits", func() float64 { return float64(s.MegaHits.Load()) })
		s.reg.GaugeFunc("ovs.slow_misses", func() float64 { return float64(s.Misses.Load()) })
		s.reg.GaugeFunc("ovs.emc_entries", func() float64 { return float64(s.CacheSize()) })
		s.reg.GaugeFunc("ovs.megaflow_entries", func() float64 { return float64(s.MegaflowCount()) })
	}
	return s
}

// Name returns "ovs".
func (s *OVS) Name() string { return "ovs" }

// Install programs the slow path, resets the statistics and invalidates
// every worker's caches (the pipeline pointer swap itself is the
// invalidation signal; the fresh primary worker starts empty).
func (s *OVS) Install(p *mat.Pipeline) error {
	dpOpts := []dataplane.Option{dataplane.WithTelemetry(s.reg)}
	if s.dec != nil {
		dpOpts = append(dpOpts, dataplane.WithSchema(s.dec.Schema()))
	}
	dp, err := dataplane.Compile(p, dataplane.FixedTemplate(classifier.ForceTupleSpace), dpOpts...)
	if err != nil {
		return fmt.Errorf("ovs: %w", err)
	}
	s.slow.Store(dp)
	s.prim = s.newOVSWorker()
	s.Reset()
	return nil
}

func keyOf(p *packet.Packet) ovsKey {
	return ovsKey{
		src: p.IPSrc, dst: p.IPDst,
		sport: p.SrcPort, dport: p.DstPort,
		ethType: p.EthType, vlan: p.VLANID,
		proto: p.Proto, ttl: p.TTL,
	}
}

// ovsWorker is one datapath shard: private EMC + megaflow cache, scratch
// packet, slow-path registers and wildcard trace buffer.
type ovsWorker struct {
	parent *OVS
	slow   *dataplane.Pipeline
	epoch  uint64
	ctx    *dataplane.Ctx
	trace  *dataplane.Trace
	cache  map[ovsKey]ovsHit
	mega   *megaflowCache
	// direct is set when the installed program is pre-fused
	// (mat.Pipeline.Fused): the caches exist to amortize multi-table
	// traversal, and fusion already collapsed the pipeline into one
	// first-match structure — the compile-time analogue of the megaflow
	// cache itself — so the shard forwards through it directly instead of
	// stacking microflow hashing on top of an O(1) datapath.
	direct bool
	// pendHits/pendMega/pendMisses accumulate layer counts locally during a
	// frame or batch; flushStats drains them to the shared atomics once per
	// call (amortizing the atomic traffic) and on Reset (so a snapshot taken
	// right after Reset cannot see a late flush's residue).
	pendHits, pendMega, pendMisses uint64
	// arena is the shard's frame-decode ring (scratch Packets, or
	// FieldViews in schema mode — where frames bypass the canonical-field
	// cache layers entirely).
	arena *dataplane.FrameBatch
	one   [1][]byte
	vout  [1]dataplane.Verdict
}

func (s *OVS) newOVSWorker() *ovsWorker {
	return &ovsWorker{
		parent: s,
		trace:  dataplane.NewTrace(),
		cache:  make(map[ovsKey]ovsHit, 4096),
		mega:   newMegaflowCache(),
		arena:  dataplane.NewFrameBatch(s.dec).Attach(s.reg),
	}
}

func (w *ovsWorker) flush() {
	for k := range w.cache {
		delete(w.cache, k)
	}
	w.mega.flush()
}

// refresh revalidates the shard: a swapped slow path or a bumped epoch
// flushes the local caches; a swapped slow path also re-provisions the
// metadata registers.
func (w *ovsWorker) refresh() (*dataplane.Pipeline, error) {
	slow := w.parent.slow.Load()
	if slow == nil {
		return nil, errNotProgrammed
	}
	if slow != w.slow {
		w.slow = slow
		w.ctx = slow.NewCtx()
		w.direct = slow.Fused() != nil
		w.flush()
	}
	if e := w.parent.epoch.Load(); e != w.epoch {
		w.epoch = e
		w.flush()
	}
	return slow, nil
}

// process consults the EMC, then the megaflow cache, then the slow path —
// the OVS datapath lookup chain — accumulating layer hits into the
// shard's pending counters (drained to the shared atomics by flushStats,
// per frame or per batch). Slow-path traversals trace the consulted
// header bits and install a megaflow covering every microflow that agrees
// on them.
//
// Caveat, as in the real caches: cached entries replay the *verdict* (port
// or drop), so the model is exact for forwarding workloads;
// header-rewriting actions are applied only on the slow path. The
// benchmark workloads (gateway & load balancer) are pure forwarding.
func (w *ovsWorker) process(slow *dataplane.Pipeline, pkt *packet.Packet) (dataplane.Verdict, error) {
	if w.direct {
		// Pre-fused program: forward through the decision structure
		// directly (counted as slow-path traversals — that is literally
		// what they are; there is no cache layer in front).
		w.pendMisses++
		return slow.Process(pkt, w.ctx)
	}
	k := keyOf(pkt)
	if hit, ok := w.cache[k]; ok {
		w.pendHits++
		return hit.verdict, nil
	}
	if v, ok := w.mega.lookup(pkt); ok {
		w.pendMega++
		if len(w.cache) < ovsCacheMax {
			w.cache[k] = ovsHit{verdict: v}
		}
		return v, nil
	}
	w.pendMisses++
	v, err := slow.ProcessTraced(pkt, w.ctx, w.trace)
	if err != nil {
		return v, err
	}
	w.mega.insert(pkt, w.trace, v)
	if len(w.cache) < ovsCacheMax {
		w.cache[k] = ovsHit{verdict: v}
	}
	return v, nil
}

// flushStats drains the shard's pending layer counts into the shared
// atomics and zeroes them.
func (w *ovsWorker) flushStats() {
	if w.pendHits > 0 {
		w.parent.Hits.Add(w.pendHits)
		w.pendHits = 0
	}
	if w.pendMega > 0 {
		w.parent.MegaHits.Add(w.pendMega)
		w.pendMega = 0
	}
	if w.pendMisses > 0 {
		w.parent.Misses.Add(w.pendMisses)
		w.pendMisses = 0
	}
}

// ProcessFrame forwards one frame as a single-frame batch.
func (w *ovsWorker) ProcessFrame(frame []byte) (dataplane.Verdict, error) {
	w.one[0] = frame
	if err := w.ProcessBatch(w.one[:], w.vout[:]); err != nil {
		return dataplane.Verdict{}, err
	}
	return w.vout[0], nil
}

// ProcessBatch forwards a frame batch with one revalidation check and one
// statistics flush for the whole batch. Schema mode hands the whole batch
// to the slow path's wire-ingest entry (the caches cannot key on
// non-canonical fields; see the OVS.dec doc) — every frame that decodes
// counts as a slow-path traversal. Default mode decodes through the
// arena's Packet ring and runs the EMC → megaflow → slow lookup chain per
// frame.
func (w *ovsWorker) ProcessBatch(frames [][]byte, out []dataplane.Verdict) error {
	if len(out) < len(frames) {
		return fmt.Errorf("switches: verdict buffer %d too small for batch of %d", len(out), len(frames))
	}
	slow, err := w.refresh()
	if err != nil {
		return err
	}
	defer w.flushStats()
	if w.parent.dec != nil {
		before := w.arena.DropTotal()
		if err := slow.ProcessFrames(frames, w.arena, out, nil); err != nil {
			return err
		}
		w.pendMisses += uint64(len(frames)) - (w.arena.DropTotal() - before)
		return nil
	}
	for i, f := range frames {
		pkt, _, err := w.arena.Decode(f)
		if err != nil {
			out[i] = dataplane.Verdict{Drop: true}
			continue
		}
		v, err := w.process(slow, pkt)
		if err != nil {
			return err
		}
		out[i] = v
	}
	return nil
}

func (s *OVS) getWorker() *ovsWorker {
	if w, ok := s.pool.Get().(*ovsWorker); ok {
		return w
	}
	return s.newOVSWorker()
}

// ProcessFrame checks a worker shard out of the pool and forwards one
// frame. Safe for concurrent use.
func (s *OVS) ProcessFrame(frame []byte) (dataplane.Verdict, error) {
	w := s.getWorker()
	v, err := w.ProcessFrame(frame)
	s.pool.Put(w)
	return v, err
}

// ProcessBatch checks a worker shard out of the pool and forwards a frame
// batch. Safe for concurrent use.
func (s *OVS) ProcessBatch(frames [][]byte, out []dataplane.Verdict) error {
	w := s.getWorker()
	err := w.ProcessBatch(frames, out)
	s.pool.Put(w)
	return err
}

// NewWorker returns a dedicated datapath shard (its own EMC and megaflow
// cache) for one forwarding goroutine — the model's PMD thread.
func (s *OVS) NewWorker() Worker { return s.newOVSWorker() }

// Process forwards one packet through the primary shard (single-threaded
// convenience; the cache inspectors below report this shard's state).
func (s *OVS) Process(pkt *packet.Packet) (dataplane.Verdict, error) {
	slow, err := s.prim.refresh()
	if err != nil {
		return dataplane.Verdict{}, err
	}
	v, err := s.prim.process(slow, pkt)
	s.prim.flushStats()
	return v, err
}

// ApplyMods triggers revalidation: the primary shard is flushed eagerly,
// and every other worker flushes on its next frame via the epoch bump.
func (s *OVS) ApplyMods(int) error {
	s.epoch.Add(1)
	s.prim.epoch = s.epoch.Load()
	s.prim.flush()
	return nil
}

// Reset zeroes the layer-hit statistics. Per-worker pending accumulators
// are drained first: every pooled shard and the primary flush their
// in-flight counts into the atomics before those are cleared, so a Stats
// snapshot taken right after Reset reads zero rather than the residue of
// a not-yet-flushed batch. Dedicated NewWorker shards owned by caller
// goroutines cannot be drained here; quiesce them before Reset.
func (s *OVS) Reset() {
	var drained []*ovsWorker
	for {
		w, ok := s.pool.Get().(*ovsWorker)
		if !ok {
			break
		}
		w.flushStats()
		drained = append(drained, w)
	}
	s.prim.flushStats()
	s.Hits.Store(0)
	s.MegaHits.Store(0)
	s.Misses.Store(0)
	for _, w := range drained {
		s.pool.Put(w)
	}
}

// Stats reports the unified telemetry view: the slow-path pipeline's
// per-stage match counts plus the cache-layer breakdown — per-layer hit
// counters, entry counts of the primary shard's caches, and the overall
// cache hit ratio (the quantity behind OVS's representation-agnosticism).
func (s *OVS) Stats() telemetry.Snapshot {
	snap := pipelineSnapshot("ovs", s.slow.Load())
	if snap.Counters == nil {
		snap.Counters = make(map[string]uint64, 3)
	}
	if snap.Gauges == nil {
		snap.Gauges = make(map[string]float64, 3)
	}
	hits, mega, misses := s.Hits.Load(), s.MegaHits.Load(), s.Misses.Load()
	snap.Counters["emc_hits"] = hits
	snap.Counters["megaflow_hits"] = mega
	snap.Counters["slow_misses"] = misses
	snap.Gauges["emc_entries"] = float64(s.CacheSize())
	snap.Gauges["megaflow_entries"] = float64(s.MegaflowCount())
	if total := hits + mega + misses; total > 0 {
		snap.Gauges["cache_hit_ratio"] = float64(hits+mega) / float64(total)
	}
	return snap
}

// Perf returns the latency calibration (see ESwitch.Perf for the formula).
func (s *OVS) Perf() PerfModel {
	return PerfModel{BaseLatencyNs: 400_000, QueueFactor: 500}
}

// CacheSize reports the number of cached exact-match flows (EMC) in the
// primary shard.
func (s *OVS) CacheSize() int { return len(s.prim.cache) }

// MegaflowCount reports the number of cached megaflows in the primary
// shard.
func (s *OVS) MegaflowCount() int { return s.prim.mega.Entries }

// Counters snapshots a stage's per-entry packet counters.
func (s *OVS) Counters(stage int) []uint64 {
	dp := s.slow.Load()
	if dp == nil {
		return nil
	}
	return dp.Counters(stage)
}
