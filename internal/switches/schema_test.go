package switches

import (
	"testing"

	"manorm/internal/dataplane"
	"manorm/internal/mat"
	"manorm/internal/packet"
)

// vxlanTenantPipeline builds a one-stage VXLAN program: exact-match the
// 24-bit VNI, forward to a per-tenant port, drop unknown tenants.
func vxlanTenantPipeline(t *testing.T, dec *packet.Decoder, tenants int) *mat.Pipeline {
	t.Helper()
	b := packet.NewBinder(dec.Schema())
	tab := mat.New("vxlan_tenants", append(b.Columns(packet.FieldVXLANVNI),
		mat.Attr{Name: "out", Kind: mat.Action, Width: 16}))
	tab.Provenance = dec.Schema().Name
	for i := 0; i < tenants; i++ {
		tab.Entries = append(tab.Entries, mat.Entry{
			mat.Exact(uint64(1000+i), 24),
			mat.Exact(uint64(10+i), 16),
		})
	}
	return &mat.Pipeline{
		Name:   "vxlan_tenants",
		Start:  0,
		Stages: []mat.Stage{{Table: tab, Next: -1, MissDrop: true}},
	}
}

// vxlanFrame marshals a full eth/ipv4/udp/vxlan/inner_eth frame carrying
// the given VNI.
func vxlanFrame(t *testing.T, dec *packet.Decoder, vni uint64) []byte {
	t.Helper()
	v := dec.NewView()
	for _, h := range []string{"eth", "ipv4", "udp", "vxlan", "inner_eth"} {
		if !v.MarkPresentName(h) {
			t.Fatalf("unknown header %q", h)
		}
	}
	v.SetName("eth_dst", 0x0a0b0c0d0e0f)
	v.SetName("eth_type", packet.EtherTypeIPv4)
	v.SetName("ip_ttl", 64)
	v.SetName("ip_proto", packet.ProtoUDP)
	v.SetName("udp_dst", packet.UDPPortVXLAN)
	v.SetName("vxlan_flags", 0x08)
	v.SetName(packet.FieldVXLANVNI, vni)
	v.SetName(packet.FieldInnerEthDst, 0x112233445566)
	return v.Marshal(nil)
}

// TestSwitchesForwardVXLANSchema drives a VXLAN tenant program through
// all four switch models in schema mode: known VNIs forward to their
// tenant port on the frame, batch and dedicated-worker paths; unknown
// VNIs and truncated frames drop.
func TestSwitchesForwardVXLANSchema(t *testing.T) {
	dec, err := packet.BuiltinDecoder(packet.SchemaVXLAN)
	if err != nil {
		t.Fatal(err)
	}
	const tenants = 8
	p := vxlanTenantPipeline(t, dec, tenants)

	frames := make([][]byte, 0, tenants+2)
	want := make([]dataplane.Verdict, 0, tenants+2)
	for i := 0; i < tenants; i++ {
		frames = append(frames, vxlanFrame(t, dec, uint64(1000+i)))
		want = append(want, dataplane.Verdict{Port: uint16(10 + i)})
	}
	frames = append(frames, vxlanFrame(t, dec, 9999)) // unknown tenant
	want = append(want, dataplane.Verdict{Drop: true})
	frames = append(frames, frames[0][:7]) // truncated frame
	want = append(want, dataplane.Verdict{Drop: true})

	models := []Switch{
		NewOVS(WithSchema(dec)),
		NewESwitch(WithSchema(dec)),
		NewLagopus(WithSchema(dec)),
		NewNoviFlow(WithSchema(dec)),
	}
	for _, sw := range models {
		if err := sw.Install(p); err != nil {
			t.Fatalf("%s: %v", sw.Name(), err)
		}
		check := func(path string, got dataplane.Verdict, i int) {
			t.Helper()
			w := want[i]
			if got.Drop != w.Drop || (!got.Drop && got.Port != w.Port) {
				t.Fatalf("%s/%s: frame %d verdict (%v,%d) != want (%v,%d)",
					sw.Name(), path, i, got.Drop, got.Port, w.Drop, w.Port)
			}
		}
		// Pooled frame path, twice so pooled workers get reused warm.
		for pass := 0; pass < 2; pass++ {
			for i, f := range frames {
				v, err := sw.ProcessFrame(f)
				if err != nil {
					t.Fatalf("%s: frame %d: %v", sw.Name(), i, err)
				}
				check("frame", v, i)
			}
		}
		// Batch path.
		out := make([]dataplane.Verdict, len(frames))
		if err := sw.ProcessBatch(frames, out); err != nil {
			t.Fatalf("%s: batch: %v", sw.Name(), err)
		}
		for i, v := range out {
			check("batch", v, i)
		}
		// Dedicated worker path.
		w := sw.NewWorker()
		for i, f := range frames {
			v, err := w.ProcessFrame(f)
			if err != nil {
				t.Fatalf("%s: worker frame %d: %v", sw.Name(), i, err)
			}
			check("worker", v, i)
		}
	}
}

// TestOVSSchemaModeBypassesCaches checks the honest-modeling contract:
// in schema mode every frame is a slow-path traversal — the EMC and
// megaflow layers cannot key on non-canonical fields.
func TestOVSSchemaModeBypassesCaches(t *testing.T) {
	dec, err := packet.BuiltinDecoder(packet.SchemaVXLAN)
	if err != nil {
		t.Fatal(err)
	}
	s := NewOVS(WithSchema(dec))
	if err := s.Install(vxlanTenantPipeline(t, dec, 4)); err != nil {
		t.Fatal(err)
	}
	f := vxlanFrame(t, dec, 1001)
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := s.ProcessFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if misses, _ := st.Counter("slow_misses"); misses != n {
		t.Fatalf("slow_misses = %d, want %d (schema mode must bypass caches)", misses, n)
	}
	emc, _ := st.Counter("emc_hits")
	mega, _ := st.Counter("megaflow_hits")
	if emc != 0 || mega != 0 {
		t.Fatalf("cache hits in schema mode: emc=%d megaflow=%d", emc, mega)
	}
}

// TestSchemaInstallRejectsForeignProvenance: a switch configured for the
// VXLAN schema must refuse a pipeline compiled from another schema's
// tables (provenance mismatch surfaces at Install, not as silent
// misforwarding).
func TestSchemaInstallRejectsForeignProvenance(t *testing.T) {
	dec, err := packet.BuiltinDecoder(packet.SchemaVXLAN)
	if err != nil {
		t.Fatal(err)
	}
	p := vxlanTenantPipeline(t, dec, 2)
	p.Stages[0].Table.Provenance = packet.SchemaGTPU
	for _, sw := range []Switch{
		NewOVS(WithSchema(dec)),
		NewESwitch(WithSchema(dec)),
		NewLagopus(WithSchema(dec)),
		NewNoviFlow(WithSchema(dec)),
	} {
		if err := sw.Install(p); err == nil {
			t.Fatalf("%s: Install accepted a gtpu-provenance table on a vxlan-schema switch", sw.Name())
		}
	}
}

// TestSchemaWorkerZeroAlloc pins the schema hot path: a warmed dedicated
// worker forwards schema frames without allocating. Lagopus is excluded:
// its per-packet generic record lift (view.Record, a map build) is the
// model's deliberate interpretive overhead, not an accident of the
// schema path.
func TestSchemaWorkerZeroAlloc(t *testing.T) {
	dec, err := packet.BuiltinDecoder(packet.SchemaVXLAN)
	if err != nil {
		t.Fatal(err)
	}
	for _, sw := range []Switch{
		NewOVS(WithSchema(dec)),
		NewESwitch(WithSchema(dec)),
		NewNoviFlow(WithSchema(dec)),
	} {
		if err := sw.Install(vxlanTenantPipeline(t, dec, 4)); err != nil {
			t.Fatalf("%s: %v", sw.Name(), err)
		}
		w := sw.NewWorker()
		f := vxlanFrame(t, dec, 1002)
		if _, err := w.ProcessFrame(f); err != nil { // warm: refresh + ctx alloc
			t.Fatalf("%s: %v", sw.Name(), err)
		}
		allocs := testing.AllocsPerRun(200, func() {
			if _, err := w.ProcessFrame(f); err != nil {
				t.Fatalf("%s: %v", sw.Name(), err)
			}
		})
		if allocs != 0 {
			t.Fatalf("%s: schema worker frame path allocates %.1f/op, want 0", sw.Name(), allocs)
		}
	}
}
