package switches

import (
	"fmt"

	"manorm/internal/classifier"
	"manorm/internal/dataplane"
	"manorm/internal/mat"
	"manorm/internal/packet"
	"manorm/internal/telemetry"
)

// Lagopus models the Lagopus software OpenFlow switch: a faithful but
// generic interpreted datapath. Every table uses the same tuple-space
// classifier regardless of shape, and each packet is lifted into a generic
// attribute record before matching — the interpretive overhead that makes
// the real Lagopus both slower than OVS/ESwitch and insensitive to the
// pipeline representation (§5, Table 1: 1.4 Mpps either way).
//
// Workers carry the lift flag, so the per-packet record construction is
// paid on the concurrent frame paths exactly as on the packet path.
type Lagopus struct {
	dpSwitch
	ctx *dataplane.Ctx
}

// NewLagopus creates an unprogrammed Lagopus model.
func NewLagopus(opts ...Option) *Lagopus {
	s := &Lagopus{}
	s.lift = true
	s.applyCfg(buildCfg(opts))
	return s
}

// Name returns "lagopus".
func (s *Lagopus) Name() string { return "lagopus" }

// Install programs the interpreted pipeline.
func (s *Lagopus) Install(p *mat.Pipeline) error {
	dp, err := dataplane.Compile(p, dataplane.FixedTemplate(classifier.ForceTupleSpace), s.dpOpts()...)
	if err != nil {
		return fmt.Errorf("lagopus: %w", err)
	}
	s.ctx = dp.NewCtx()
	s.dp.Store(dp)
	return nil
}

// Process lifts the packet into the generic record representation (the
// interpreter's per-packet metadata structure) and then classifies. The
// record is built and discarded per packet — the model's honest stand-in
// for Lagopus's generic flowinfo handling; it dominates service time and
// is identical for every representation.
func (s *Lagopus) Process(pkt *packet.Packet) (dataplane.Verdict, error) {
	dp := s.dp.Load()
	if dp == nil {
		return dataplane.Verdict{}, errNotProgrammed
	}
	rec := pkt.Record()
	if len(rec) == 0 {
		return dataplane.Verdict{Drop: true, Tables: 0}, nil
	}
	return dp.Process(pkt, s.ctx)
}

// ApplyMods is a no-op for the model.
func (s *Lagopus) ApplyMods(int) error { return nil }

// Stats reports the per-stage match counts of the interpreted pipeline.
func (s *Lagopus) Stats() telemetry.Snapshot { return s.pipelineStats("lagopus") }

// Perf returns the latency calibration (see ESwitch.Perf for the formula).
func (s *Lagopus) Perf() PerfModel {
	return PerfModel{BaseLatencyNs: 600_000, QueueFactor: 300}
}
