package switches

import (
	"manorm/internal/dataplane"
	"manorm/internal/packet"
)

// megaflowCache is the OVS-style second-level cache: masked ("megaflow")
// entries produced by slow-path wildcard tracing. One megaflow covers
// every microflow agreeing on the traced bits, so the cache stays small —
// roughly one entry per distinct pipeline path — and is exactly the lazily
// built denormalized table the paper's OVS discussion describes.
//
// Entries are grouped by mask signature (a dynamic tuple space); lookup
// probes each mask group with the masked key.
type megaflowCache struct {
	fields []string // canonical field order for keys
	widths []uint8
	groups []*megaflowGroup
	byMask map[string]*megaflowGroup
	// Entries counts cached megaflows.
	Entries int
}

type megaflowGroup struct {
	plens   []uint8
	buckets map[megaKey]dataplane.Verdict
}

// megaKey fits the canonical field set; fields beyond the array are not
// used by the models' workloads.
type megaKey [10]uint64

func newMegaflowCache() *megaflowCache {
	return &megaflowCache{
		fields: []string{
			packet.FieldEthDst, packet.FieldEthSrc, packet.FieldEthType,
			packet.FieldVLAN, packet.FieldIPSrc, packet.FieldIPDst,
			packet.FieldIPProto, packet.FieldTTL, packet.FieldTCPSrc, packet.FieldTCPDst,
		},
		widths: []uint8{48, 48, 16, 12, 32, 32, 8, 8, 16, 16},
		byMask: make(map[string]*megaflowGroup),
	}
}

// maskValue keeps the top plen bits of a width-bit value.
func maskValue(v uint64, plen, width uint8) uint64 {
	if plen == 0 {
		return 0
	}
	if plen >= width {
		return v
	}
	return v &^ ((uint64(1) << (width - plen)) - 1)
}

// lookup probes every mask group.
func (c *megaflowCache) lookup(pkt *packet.Packet) (dataplane.Verdict, bool) {
	var key megaKey
	for _, g := range c.groups {
		for i, f := range c.fields {
			if g.plens[i] == 0 {
				key[i] = 0
				continue
			}
			v, ok := pkt.Field(f)
			if !ok {
				v = 0
			}
			key[i] = maskValue(v, g.plens[i], c.widths[i])
		}
		if verdict, ok := g.buckets[key]; ok {
			return verdict, true
		}
	}
	return dataplane.Verdict{}, false
}

// insert installs a megaflow from a slow-path trace.
func (c *megaflowCache) insert(pkt *packet.Packet, tr *dataplane.Trace, v dataplane.Verdict) {
	plens := make([]uint8, len(c.fields))
	sig := make([]byte, len(c.fields))
	for i, f := range c.fields {
		if p, ok := tr.PLens[f]; ok {
			plens[i] = p
			sig[i] = byte(p)
		}
	}
	g, ok := c.byMask[string(sig)]
	if !ok {
		g = &megaflowGroup{plens: plens, buckets: make(map[megaKey]dataplane.Verdict)}
		c.byMask[string(sig)] = g
		c.groups = append(c.groups, g)
	}
	var key megaKey
	for i, f := range c.fields {
		if plens[i] == 0 {
			continue
		}
		v, ok := pkt.Field(f)
		if !ok {
			v = 0
		}
		key[i] = maskValue(v, plens[i], c.widths[i])
	}
	if _, dup := g.buckets[key]; !dup {
		g.buckets[key] = v
		c.Entries++
	}
}

// flush empties the cache (revalidation).
func (c *megaflowCache) flush() {
	c.groups = nil
	c.byMask = make(map[string]*megaflowGroup)
	c.Entries = 0
}
