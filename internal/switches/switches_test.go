package switches

import (
	"testing"

	"manorm/internal/dataplane"
	"manorm/internal/mat"
	"manorm/internal/packet"
	"manorm/internal/trafficgen"
	"manorm/internal/usecases"
)

// every switch model must forward the gwlb workload identically.
func allSwitches() []Switch {
	return []Switch{NewOVS(), NewESwitch(), NewLagopus(), NewNoviFlow()}
}

func TestAllSwitchesAgreeOnGwlb(t *testing.T) {
	g := usecases.Generate(10, 4, 3)
	reps := []usecases.Representation{
		usecases.RepUniversal, usecases.RepGoto, usecases.RepMetadata, usecases.RepRematch,
	}
	stream := trafficgen.GwLB(g, 512, 0.9, 5)
	// Reference verdicts from the raw dataplane on the universal table.
	uni, err := g.Build(usecases.RepUniversal)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := dataplane.Compile(uni, dataplane.AutoTemplates)
	if err != nil {
		t.Fatal(err)
	}
	refCtx := ref.NewCtx()
	want := make([]dataplane.Verdict, stream.Len())
	for i := range want {
		v, err := ref.Process(stream.Next(), refCtx)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}

	for _, sw := range allSwitches() {
		for _, rep := range reps {
			p, err := g.Build(rep)
			if err != nil {
				t.Fatal(err)
			}
			if err := sw.Install(p); err != nil {
				t.Fatalf("%s/%s: %v", sw.Name(), rep, err)
			}
			for i := 0; i < stream.Len(); i++ {
				v, err := sw.Process(stream.Next())
				if err != nil {
					t.Fatalf("%s/%s: %v", sw.Name(), rep, err)
				}
				if v.Drop != want[i].Drop || (!v.Drop && v.Port != want[i].Port) {
					t.Fatalf("%s/%s: packet %d verdict (%v,%d) != reference (%v,%d)",
						sw.Name(), rep, i, v.Drop, v.Port, want[i].Drop, want[i].Port)
				}
			}
		}
	}
}

func TestOVSCacheBehaviour(t *testing.T) {
	g := usecases.Generate(5, 4, 1)
	s := NewOVS()
	p, err := g.Build(usecases.RepGoto)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Install(p); err != nil {
		t.Fatal(err)
	}
	stream := trafficgen.GwLB(g, 256, 1.0, 2)
	// First cycle populates; second cycle must hit.
	for i := 0; i < stream.Len(); i++ {
		if _, err := s.Process(stream.Next()); err != nil {
			t.Fatal(err)
		}
	}
	misses := s.Misses.Load()
	if misses == 0 || s.CacheSize() == 0 {
		t.Fatalf("cache not populated: misses=%d size=%d", misses, s.CacheSize())
	}
	for i := 0; i < stream.Len(); i++ {
		if _, err := s.Process(stream.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if s.Misses.Load() != misses {
		t.Errorf("second cycle missed: %d -> %d", misses, s.Misses.Load())
	}
	if s.Hits.Load() == 0 {
		t.Errorf("no cache hits recorded")
	}
	// Updates flush the cache.
	if err := s.ApplyMods(1); err != nil {
		t.Fatal(err)
	}
	if s.CacheSize() != 0 {
		t.Errorf("cache survived revalidation: %d", s.CacheSize())
	}
}

func TestESwitchTemplates(t *testing.T) {
	g := usecases.Generate(20, 8, 7)
	s := NewESwitch()
	uni, _ := g.Build(usecases.RepUniversal)
	if err := s.Install(uni); err != nil {
		t.Fatal(err)
	}
	if tmpl := s.Templates(); tmpl[0] != "ternary" {
		t.Errorf("universal compiled to %v, want ternary first", tmpl)
	}
	gp, _ := g.Build(usecases.RepGoto)
	if err := s.Install(gp); err != nil {
		t.Fatal(err)
	}
	tmpl := s.Templates()
	if tmpl[0] != "exact" {
		t.Errorf("goto first stage = %s, want exact", tmpl[0])
	}
	for i := 1; i < len(tmpl); i++ {
		if tmpl[i] != "lpm" && tmpl[i] != "exact" {
			t.Errorf("goto stage %d = %s, want lpm/exact", i, tmpl[i])
		}
	}
}

func TestNoviFlowReactiveModel(t *testing.T) {
	s := NewNoviFlow()
	g := usecases.Generate(20, 8, 7)
	uni, _ := g.Build(usecases.RepUniversal)
	if err := s.Install(uni); err != nil {
		t.Fatal(err)
	}
	line := s.Perf().HWLineRateMpps

	// No updates: line rate.
	if got := s.ReactiveThroughput(0, 8, 160); got != line {
		t.Errorf("idle throughput = %g, want %g", got, line)
	}
	// The paper's Fig. 4 point: 100 updates/s on the universal table
	// (8 mods each, 160-entry table) costs ~20× throughput...
	uniRate := s.ReactiveThroughput(100, 8, 160)
	if ratio := line / uniRate; ratio < 10 || ratio > 30 {
		t.Errorf("universal loss ratio = %.1f, want ~20x", ratio)
	}
	// ...while the normalized pipeline (1 mod on the 20-entry service
	// table) shows no visible drop.
	normRate := s.ReactiveThroughput(100, 1, 20)
	if normRate < 0.9*line {
		t.Errorf("normalized rate = %g, want >= 90%% of %g", normRate, line)
	}
	// Monotone in update rate.
	if s.ReactiveThroughput(50, 8, 160) < uniRate {
		t.Errorf("throughput not monotone in update rate")
	}

	// Latency: normalized (2 stages) ~25-35% above universal (1 stage),
	// independent of churn.
	lu := s.ReactiveLatency(1)
	ln := s.ReactiveLatency(2)
	if lu != 6400 {
		t.Errorf("universal latency = %g ns, want 6400", lu)
	}
	if inc := ln/lu - 1; inc < 0.2 || inc > 0.4 {
		t.Errorf("normalized latency increase = %.0f%%, want ~25-35%%", inc*100)
	}
	if s.LargestStageEntries() != 160 {
		t.Errorf("largest stage = %d, want 160", s.LargestStageEntries())
	}
}

func TestPerfModelsDistinguishSwitches(t *testing.T) {
	// Only the hardware model is line-rate bound.
	for _, sw := range allSwitches() {
		hw := sw.Perf().HWLineRateMpps > 0
		if hw != (sw.Name() == "noviflow") {
			t.Errorf("%s: HWLineRateMpps misconfigured", sw.Name())
		}
	}
}

func TestInstallErrors(t *testing.T) {
	bad := &mat.Pipeline{Name: "empty"}
	for _, sw := range allSwitches() {
		if err := sw.Install(bad); err == nil {
			t.Errorf("%s accepted an invalid pipeline", sw.Name())
		}
	}
}

func TestLagopusHandlesNonIP(t *testing.T) {
	g := usecases.Fig1()
	s := NewLagopus()
	p, _ := g.Build(usecases.RepUniversal)
	if err := s.Install(p); err != nil {
		t.Fatal(err)
	}
	arp := &packet.Packet{EthType: packet.EtherTypeARP, EthSrc: 1, EthDst: 2}
	v, err := s.Process(arp)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Drop {
		t.Errorf("non-IP packet not dropped by IP pipeline")
	}
}
