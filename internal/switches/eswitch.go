package switches

import (
	"fmt"

	"manorm/internal/dataplane"
	"manorm/internal/mat"
	"manorm/internal/packet"
	"manorm/internal/telemetry"
)

// ESwitch models the template-specializing software switch of [Molnár et
// al., SIGCOMM'16]: on Install it compiles every table to the most
// efficient classifier template the table's shape admits (exact hash, LPM
// trie, or the ternary scan). This is the switch where normalization
// pays off directly: the universal gateway table is stuck with the ternary
// template while the decomposed stages compile to exact + LPM (§5,
// Table 1: 9.6 → 15.0 Mpps, 426 → 247 µs).
//
// All mutable per-packet state lives in workers (see dpSwitch), so the
// frame APIs are safe for concurrent callers and NewWorker hands out
// per-core forwarding contexts for the parallel harness.
type ESwitch struct {
	dpSwitch
	// ctx backs the single-threaded packet-level Process convenience.
	ctx *dataplane.Ctx
}

// NewESwitch creates an unprogrammed ESwitch model.
func NewESwitch(opts ...Option) *ESwitch {
	s := &ESwitch{}
	s.applyCfg(buildCfg(opts))
	return s
}

// Name returns "eswitch".
func (s *ESwitch) Name() string { return "eswitch" }

// Install recompiles the datapath with per-table template specialization
// and publishes it; live workers pick it up on their next frame.
func (s *ESwitch) Install(p *mat.Pipeline) error {
	dp, err := dataplane.Compile(p, dataplane.AutoTemplates, s.dpOpts()...)
	if err != nil {
		return fmt.Errorf("eswitch: %w", err)
	}
	s.ctx = dp.NewCtx()
	s.dp.Store(dp)
	return nil
}

// Process classifies through the specialized templates (single-threaded
// convenience; parallel drivers use the frame APIs or NewWorker).
func (s *ESwitch) Process(pkt *packet.Packet) (dataplane.Verdict, error) {
	dp := s.dp.Load()
	if dp == nil {
		return dataplane.Verdict{}, errNotProgrammed
	}
	return dp.Process(pkt, s.ctx)
}

// ApplyMods models a flow-mod batch. ESwitch recompiles its datapath on
// changes; the functional state here is template-compiled and the
// benchmark updates reinstall, so this only invalidates nothing.
func (s *ESwitch) ApplyMods(int) error { return nil }

// Perf returns the latency calibration: reported latency is
// BaseLatencyNs + QueueFactor × measured service time, so the headline
// latency ratio between representations follows the real classifier work
// while the absolute scale matches the paper's testbed (§5, Table 1).
func (s *ESwitch) Perf() PerfModel {
	return PerfModel{BaseLatencyNs: 200_000, QueueFactor: 600}
}

// Stats reports the per-stage match counts plus the chosen classifier
// templates (as a template0..n gauge-free counter view would be lossy,
// templates ride along in the snapshot name-keyed counters as
// "template<i>_<name>" markers with value 1).
func (s *ESwitch) Stats() telemetry.Snapshot {
	snap := s.pipelineStats("eswitch")
	if tmpls := s.Templates(); len(tmpls) > 0 {
		if snap.Counters == nil {
			snap.Counters = make(map[string]uint64, len(tmpls))
		}
		for i, t := range tmpls {
			snap.Counters[fmt.Sprintf("template%d_%s", i, t)] = 1
		}
	}
	return snap
}

// Templates reports the chosen per-stage templates (for tests and the
// experiment logs).
func (s *ESwitch) Templates() []string {
	dp := s.dp.Load()
	if dp == nil {
		return nil
	}
	return dp.Templates()
}
