package switches

import (
	"fmt"

	"manorm/internal/dataplane"
	"manorm/internal/mat"
	"manorm/internal/packet"
)

// ESwitch models the template-specializing software switch of [Molnár et
// al., SIGCOMM'16]: on Install it compiles every table to the most
// efficient classifier template the table's shape admits (exact hash, LPM
// trie, or the slow ternary scan). This is the switch where normalization
// pays off directly: the universal gateway table is stuck with the ternary
// template while the decomposed stages compile to exact + LPM (§5,
// Table 1: 9.6 → 15.0 Mpps, 426 → 247 µs).
type ESwitch struct {
	dp      *dataplane.Pipeline
	ctx     *dataplane.Ctx
	scratch packet.Packet
}

// NewESwitch creates an unprogrammed ESwitch model.
func NewESwitch() *ESwitch { return &ESwitch{} }

// Name returns "eswitch".
func (s *ESwitch) Name() string { return "eswitch" }

// Install recompiles the datapath with per-table template specialization.
func (s *ESwitch) Install(p *mat.Pipeline) error {
	dp, err := dataplane.Compile(p, dataplane.AutoTemplates)
	if err != nil {
		return fmt.Errorf("eswitch: %w", err)
	}
	s.dp = dp
	s.ctx = dp.NewCtx()
	return nil
}

// Process classifies through the specialized templates.
func (s *ESwitch) Process(pkt *packet.Packet) (dataplane.Verdict, error) {
	return s.dp.Process(pkt, s.ctx)
}

// ApplyMods models a flow-mod batch. ESwitch recompiles its datapath on
// changes; the functional state here is template-compiled and the
// benchmark updates reinstall, so this only invalidates nothing.
func (s *ESwitch) ApplyMods(int) error { return nil }

// Perf returns the latency calibration: reported latency is
// BaseLatencyNs + QueueFactor × measured service time, so the headline
// latency ratio between representations follows the real classifier work
// while the absolute scale matches the paper's testbed (§5, Table 1).
func (s *ESwitch) Perf() PerfModel {
	return PerfModel{BaseLatencyNs: 200_000, QueueFactor: 600}
}

// Templates reports the chosen per-stage templates (for tests and the
// experiment logs).
func (s *ESwitch) Templates() []string {
	if s.dp == nil {
		return nil
	}
	return s.dp.Templates()
}

// Counters snapshots a stage's per-entry packet counters.
func (s *ESwitch) Counters(stage int) []uint64 {
	return s.dp.Counters(stage)
}

// ProcessFrame parses the frame into the model's scratch packet and
// forwards it; malformed frames drop.
func (s *ESwitch) ProcessFrame(frame []byte) (dataplane.Verdict, error) {
	if err := s.scratch.ParseInto(frame); err != nil {
		return dataplane.Verdict{Drop: true}, nil
	}
	return s.Process(&s.scratch)
}
