package switches

import (
	"testing"

	"manorm/internal/usecases"
)

func installedNovi(t *testing.T, rep usecases.Representation) *NoviFlow {
	t.Helper()
	g := usecases.Generate(20, 8, 42)
	sw := NewNoviFlow()
	p, err := g.Build(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Install(p); err != nil {
		t.Fatal(err)
	}
	return sw
}

func TestSimulateReactiveMatchesAnalytic(t *testing.T) {
	// The emergent (simulated) throughput must track the closed form
	// within a few percent across the Fig. 4 sweep, for both churn
	// profiles.
	sw := installedNovi(t, usecases.RepUniversal)
	cases := []struct {
		mods, entries int
	}{
		{8, 160}, // universal
		{1, 20},  // normalized
	}
	for _, c := range cases {
		for _, rate := range []float64{0, 10, 25, 50, 100} {
			analytic := sw.ReactiveThroughput(rate, c.mods, c.entries)
			sim := sw.SimulateReactive(DefaultReactiveSim(rate, c.mods, c.entries, 1))
			diff := sim.RateMpps - analytic
			if diff < 0 {
				diff = -diff
			}
			// The analytic floor (residual 4.5%) kicks in only when the
			// line is fully saturated with stalls; the sim has no floor,
			// so compare only in the unsaturated regime.
			busy := rate * float64(c.mods) * (200_000 + 8_000*float64(c.entries)) / 1e9
			if busy > 0.9 {
				continue
			}
			if diff > 0.05*sw.Perf().HWLineRateMpps {
				t.Errorf("mods=%d entries=%d rate=%.0f: sim %.2f vs analytic %.2f Mpps",
					c.mods, c.entries, rate, sim.RateMpps, analytic)
			}
		}
	}
}

func TestSimulateReactiveFig4Shape(t *testing.T) {
	sw := installedNovi(t, usecases.RepUniversal)
	// Universal at 100 upd/s collapses by an order of magnitude or more.
	idle := sw.SimulateReactive(DefaultReactiveSim(0, 8, 160, 1))
	uni := sw.SimulateReactive(DefaultReactiveSim(100, 8, 160, 1))
	if idle.RateMpps < 10.7 {
		t.Errorf("idle sim rate = %.2f, want line rate", idle.RateMpps)
	}
	if ratio := idle.RateMpps / uni.RateMpps; ratio < 10 {
		t.Errorf("simulated universal loss = %.1fx, want >= 10x", ratio)
	}
	// Normalized is essentially unaffected.
	norm := sw.SimulateReactive(DefaultReactiveSim(100, 1, 20, 2))
	if norm.RateMpps < 0.9*idle.RateMpps {
		t.Errorf("simulated normalized rate dropped: %.2f vs %.2f", norm.RateMpps, idle.RateMpps)
	}
	// Latency of *delivered* packets is pinned to the pipeline depth —
	// the paper's churn-independent latency — because stalled arrivals
	// drop rather than queue.
	if uni.DelayP75Us > 2*6.4 {
		t.Errorf("universal delivered-packet delay %.1f not churn-independent", uni.DelayP75Us)
	}
	if norm.DelayP75Us > 2*8.4 {
		t.Errorf("normalized delay %.1f far above pipeline latency", norm.DelayP75Us)
	}
	if norm.DelayP75Us <= uni.DelayP75Us {
		t.Errorf("normalized delay %.2f not above universal %.2f (pipeline depth)", norm.DelayP75Us, uni.DelayP75Us)
	}
	// Dropped + delivered add up.
	if uni.DeliveredFrac <= 0 || uni.DeliveredFrac > 1 {
		t.Errorf("delivered fraction %f out of range", uni.DeliveredFrac)
	}
}

func TestSimulateReactiveDeterministic(t *testing.T) {
	sw := installedNovi(t, usecases.RepUniversal)
	a := sw.SimulateReactive(DefaultReactiveSim(50, 8, 160, 1))
	b := sw.SimulateReactive(DefaultReactiveSim(50, 8, 160, 1))
	if a != b {
		t.Errorf("simulation not deterministic: %+v vs %+v", a, b)
	}
}
