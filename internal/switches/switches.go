// Package switches models the four programmable switches of the paper's
// evaluation (§5): Open vSwitch, ESwitch, Lagopus and a NoviFlow-style
// hardware OpenFlow switch. All models execute pipelines functionally via
// internal/dataplane; they differ in the mechanisms that made the paper's
// measurements come out the way they did:
//
//   - OVS collapses the pipeline into a single flow cache on the fly —
//     representation-agnostic by construction.
//   - ESwitch compiles each table to the best classifier template its
//     shape admits — normalization directly improves its templates.
//   - Lagopus runs a generic interpreted datapath with tuple-space tables
//     — slower overall and insensitive to representation.
//   - NoviFlow is a TCAM ASIC: line-rate lookups whatever the tables look
//     like, a per-stage pipeline latency, and a control path whose
//     flow-mod processing contends with forwarding (the reactiveness
//     experiment's mechanism).
package switches

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"manorm/internal/dataplane"
	"manorm/internal/mat"
	"manorm/internal/packet"
	"manorm/internal/telemetry"
)

// errNotProgrammed is returned when packets are offered to a switch before
// Install.
var errNotProgrammed = errors.New("switches: no pipeline installed")

// Option configures a switch model at construction time.
type Option func(*modelCfg)

// modelCfg carries cross-model construction options.
type modelCfg struct {
	reg *telemetry.Registry
	dec *packet.Decoder
}

// WithTelemetry attaches a metrics registry to the model: Install compiles
// the datapath with per-stage lookup counters and a processing-latency
// histogram registered there (see dataplane.WithTelemetry), in addition to
// whatever the model reports through Stats. A nil registry is a no-op, so
// callers can pass an optional registry through unconditionally. Without
// this option the forwarding path carries no instrumentation at all.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(c *modelCfg) { c.reg = reg }
}

// WithSchema puts the model in schema-driven mode: frames are parsed by
// the given compiled parse-graph decoder into per-worker FieldViews, and
// Install compiles pipelines against the decoder's header schema
// (dataplane.WithSchema), so programs may match any field the schema
// defines — VXLAN VNIs, MPLS labels, GTP-U TEIDs or fuzzer-invented
// stacks. A nil decoder keeps the fixed default Packet fast path.
//
// OVS note: the EMC key and megaflow cache are hardwired to the
// canonical header fields, so in schema mode the OVS model forwards
// every frame through its slow path (the honest equivalent of a
// datapath whose cache does not understand the custom protocol).
func WithSchema(dec *packet.Decoder) Option {
	return func(c *modelCfg) { c.dec = dec }
}

func buildCfg(opts []Option) modelCfg {
	var c modelCfg
	for _, o := range opts {
		o(&c)
	}
	return c
}

// Switch is a programmable switch model: install a pipeline, process
// packets, apply control-plane updates.
//
// Concurrency contract: ProcessFrame, ProcessBatch and ApplyMods are safe
// to call from any number of goroutines — every mutable per-packet
// structure (scratch packets, metadata registers, flow caches) is sharded
// per worker, and shared statistics are atomic. The packet-level Process
// and the state inspectors (CacheSize, Templates, ...) remain
// single-threaded conveniences. Install must not race with forwarding on
// the same moment's verdict expectations, but is pointer-swap safe: in-flight
// workers finish on the old program and pick up the new one on their next
// frame.
type Switch interface {
	// Name identifies the model ("ovs", "eswitch", ...).
	Name() string
	// Install programs the pipeline, replacing any previous program.
	Install(p *mat.Pipeline) error
	// Process forwards one packet. For software models this performs the
	// real classification work that the benchmarks time. Single-threaded;
	// parallel drivers go through ProcessFrame/ProcessBatch or NewWorker.
	Process(pkt *packet.Packet) (dataplane.Verdict, error)
	// ProcessFrame forwards one wire-format frame: header parsing
	// (including IPv4 checksum verification) plus Process — the
	// end-to-end per-packet work a software datapath performs, and what
	// the Table 1 measurements time. Malformed frames drop.
	ProcessFrame(frame []byte) (dataplane.Verdict, error)
	// ProcessBatch forwards a batch of wire-format frames, writing the
	// i-th verdict into out[i] (which must hold at least len(frames)).
	// Batching amortizes worker checkout, datapath revalidation checks and
	// statistics flushes over the whole batch — the hot path of the
	// parallel measurement harness.
	ProcessBatch(frames [][]byte, out []dataplane.Verdict) error
	// NewWorker returns a dedicated per-goroutine processing context
	// sharing this switch's installed program and statistics. A Worker is
	// not itself safe for concurrent use; one goroutine, one Worker. For
	// peak parallel rates drive Workers directly — the Switch-level
	// ProcessFrame/ProcessBatch check a worker out of an internal pool per
	// call.
	NewWorker() Worker
	// ApplyMods applies a control-plane update of n flow modifications,
	// invalidating whatever state the model caches.
	ApplyMods(n int) error
	// Counters snapshots the per-entry packet counters of one pipeline
	// stage (the OpenFlow multipart flow-stats view).
	Counters(stage int) []uint64
	// Perf exposes the model's analytic performance parameters.
	Perf() PerfModel
	// Stats snapshots the model's runtime telemetry — per-stage match
	// counts for every model, plus model-specific state such as OVS's
	// cache-layer hits and sizes. This is the unified observability
	// surface (telemetry.Provider); it is safe to call concurrently with
	// forwarding.
	Stats() telemetry.Snapshot
}

// ModelNames lists the four evaluated switch models in the paper's column
// order.
func ModelNames() []string { return []string{"ovs", "eswitch", "lagopus", "noviflow"} }

// New constructs a switch model by name. Options (e.g. WithTelemetry)
// pass through to the model constructor. This is the single factory the
// measurement harness (internal/bench) and the differential fuzzing
// harness (internal/difftest) build every model through.
func New(name string, opts ...Option) (Switch, error) {
	switch name {
	case "ovs":
		return NewOVS(opts...), nil
	case "eswitch":
		return NewESwitch(opts...), nil
	case "lagopus":
		return NewLagopus(opts...), nil
	case "noviflow":
		return NewNoviFlow(opts...), nil
	default:
		return nil, fmt.Errorf("switches: unknown model %q", name)
	}
}

// Switch models implement the unified stats surface.
var (
	_ telemetry.Provider = (*OVS)(nil)
	_ telemetry.Provider = (*ESwitch)(nil)
	_ telemetry.Provider = (*Lagopus)(nil)
	_ telemetry.Provider = (*NoviFlow)(nil)
)

// Worker is a per-goroutine forwarding context of one switch: its own
// scratch packet, metadata registers and (for cache-based models) flow
// cache shard. Workers observe the parent switch's Install/ApplyMods via
// cheap per-frame epoch checks.
type Worker interface {
	// ProcessFrame forwards one wire frame; malformed frames drop.
	ProcessFrame(frame []byte) (dataplane.Verdict, error)
	// ProcessBatch forwards frames into out[:len(frames)].
	ProcessBatch(frames [][]byte, out []dataplane.Verdict) error
}

// dpWorker is the worker of the datapath-driven models (ESwitch, Lagopus,
// NoviFlow): a frame-decode arena over the shared installed pipeline. All
// per-worker mutable state — the decode ring (scratch Packets or
// FieldViews in schema mode) and the pipeline scratch Ctx — lives in the
// arena; reinstalls surface as a pipeline pointer change that
// ProcessFrames absorbs on the next batch.
type dpWorker struct {
	src   *atomic.Pointer[dataplane.Pipeline]
	arena *dataplane.FrameBatch
	// opts carries the model's per-packet processing options (the Lagopus
	// record lift); nil for plain forwarding.
	opts *dataplane.ProcessOpts
	one  [1][]byte
	vout [1]dataplane.Verdict
}

// liftOpts models the Lagopus-style generic record construction per
// packet (the interpreter's per-packet metadata overhead): a record is
// built and discarded before every traversal, and a packet that yields no
// record drops. Stateless, so all lift workers share it.
var liftOpts = dataplane.NewProcessOpts(dataplane.WithDecodeHook(
	func(pkt *packet.Packet, view *packet.FieldView) bool {
		if view != nil {
			return len(view.Record()) > 0
		}
		return len(pkt.Record()) > 0
	}))

// ProcessFrame forwards one frame as a single-frame batch.
func (w *dpWorker) ProcessFrame(frame []byte) (dataplane.Verdict, error) {
	w.one[0] = frame
	if err := w.ProcessBatch(w.one[:], w.vout[:]); err != nil {
		return dataplane.Verdict{}, err
	}
	return w.vout[0], nil
}

// ProcessBatch forwards a frame batch through the wire-ingest path with
// one datapath revalidation check.
func (w *dpWorker) ProcessBatch(frames [][]byte, out []dataplane.Verdict) error {
	dp := w.src.Load()
	if dp == nil {
		return errNotProgrammed
	}
	return dp.ProcessFrames(frames, w.arena, out, w.opts)
}

// dpSwitch is the shared chassis of the datapath-driven models (ESwitch,
// Lagopus, NoviFlow): the atomically swapped compiled pipeline plus a pool
// of workers behind the switch-level frame APIs, making ProcessFrame and
// ProcessBatch safe for concurrent callers.
type dpSwitch struct {
	dp   atomic.Pointer[dataplane.Pipeline]
	pool sync.Pool
	lift bool
	// reg is the optional metrics registry (WithTelemetry); Install passes
	// it to dataplane.Compile so per-stage instruments register there.
	reg *telemetry.Registry
	// dec is the schema-mode decoder (WithSchema); nil for the default
	// Packet path.
	dec *packet.Decoder
}

// applyCfg consumes the shared construction options.
func (s *dpSwitch) applyCfg(cfg modelCfg) {
	s.reg = cfg.reg
	s.dec = cfg.dec
}

// dpOpts builds the dataplane compile options matching the model's
// configuration.
func (s *dpSwitch) dpOpts() []dataplane.Option {
	opts := []dataplane.Option{dataplane.WithTelemetry(s.reg)}
	if s.dec != nil {
		opts = append(opts, dataplane.WithSchema(s.dec.Schema()))
	}
	return opts
}

func (s *dpSwitch) newDPWorker() *dpWorker {
	w := &dpWorker{src: &s.dp, arena: dataplane.NewFrameBatch(s.dec).Attach(s.reg)}
	if s.lift {
		w.opts = liftOpts
	}
	return w
}

func (s *dpSwitch) getWorker() *dpWorker {
	if w, ok := s.pool.Get().(*dpWorker); ok {
		return w
	}
	return s.newDPWorker()
}

// ProcessFrame checks a worker out of the pool and forwards one frame.
// Safe for concurrent use.
func (s *dpSwitch) ProcessFrame(frame []byte) (dataplane.Verdict, error) {
	w := s.getWorker()
	v, err := w.ProcessFrame(frame)
	s.pool.Put(w)
	return v, err
}

// ProcessBatch checks a worker out of the pool and forwards a frame batch.
// Safe for concurrent use.
func (s *dpSwitch) ProcessBatch(frames [][]byte, out []dataplane.Verdict) error {
	w := s.getWorker()
	err := w.ProcessBatch(frames, out)
	s.pool.Put(w)
	return err
}

// NewWorker returns a dedicated per-goroutine forwarding context.
func (s *dpSwitch) NewWorker() Worker { return s.newDPWorker() }

// Counters snapshots a stage's per-entry packet counters.
func (s *dpSwitch) Counters(stage int) []uint64 {
	dp := s.dp.Load()
	if dp == nil {
		return nil
	}
	return dp.Counters(stage)
}

// pipelineSnapshot builds the shared part of every model's Stats: the
// installed pipeline's depth and per-stage matched-packet counts (summed
// from the per-entry counters, so it costs nothing on the forwarding
// path).
func pipelineSnapshot(name string, dp *dataplane.Pipeline) telemetry.Snapshot {
	snap := telemetry.Snapshot{Name: name}
	if dp == nil {
		return snap
	}
	snap.Counters = make(map[string]uint64, dp.Depth())
	snap.Gauges = map[string]float64{"pipeline_depth": float64(dp.Depth())}
	for i := 0; i < dp.Depth(); i++ {
		var sum uint64
		for _, c := range dp.Counters(i) {
			sum += c
		}
		snap.Counters[fmt.Sprintf("table%d_matched", i)] = sum
	}
	if fs := dp.Fused(); fs != nil {
		snap.Gauges["fdd_rules"] = float64(fs.Rules)
		snap.Gauges["fdd_nodes"] = float64(fs.Nodes)
		snap.Gauges["fdd_leaves"] = float64(fs.Leaves)
		snap.Gauges["fdd_depth"] = float64(fs.Depth)
	}
	return snap
}

// Stats reports the pipeline view shared by the datapath-driven models;
// the outer models override Name via their own Stats wrappers.
func (s *dpSwitch) pipelineStats(name string) telemetry.Snapshot {
	return pipelineSnapshot(name, s.dp.Load())
}

// PerfModel carries the analytic part of a switch's performance behavior.
// Software models report zero HWLineRateMpps (throughput is the measured
// packet-processing rate); the hardware model forwards at line rate and
// derives latency and update behavior from these constants.
type PerfModel struct {
	// HWLineRateMpps, when positive, caps/fixes throughput at the
	// hardware line rate regardless of software service time (64-byte
	// packets on a 10 Gbps port ≈ 14.88 Mpps; the paper's NoviFlow test
	// reached ~10.7 Mpps through its harness).
	HWLineRateMpps float64
	// BaseLatencyNs is the fixed port-to-port latency.
	BaseLatencyNs float64
	// PerTableLatencyNs is added per pipeline stage traversed — the
	// "longer pipeline" cost the paper observes for goto chaining on the
	// NoviFlow (§5: 6.4 → 8.4 µs).
	PerTableLatencyNs float64
	// QueueFactor scales measured software service time into reported
	// latency (a stand-in for batching/queueing in software datapaths).
	QueueFactor float64
	// ModStallNsBase and ModStallNsPerEntry model the forwarding stall
	// caused by one flow-mod: hardware TCAM updates shuffle entries, so
	// the stall grows with the updated table's size.
	ModStallNsBase     float64
	ModStallNsPerEntry float64
}

// Verdicts carry the number of tables actually traversed
// (dataplane.Verdict.Tables); the benchmark harness feeds that into
// PerTableLatencyNs rather than guessing from static pipeline shape.
