// Package switches models the four programmable switches of the paper's
// evaluation (§5): Open vSwitch, ESwitch, Lagopus and a NoviFlow-style
// hardware OpenFlow switch. All models execute pipelines functionally via
// internal/dataplane; they differ in the mechanisms that made the paper's
// measurements come out the way they did:
//
//   - OVS collapses the pipeline into a single flow cache on the fly —
//     representation-agnostic by construction.
//   - ESwitch compiles each table to the best classifier template its
//     shape admits — normalization directly improves its templates.
//   - Lagopus runs a generic interpreted datapath with tuple-space tables
//     — slower overall and insensitive to representation.
//   - NoviFlow is a TCAM ASIC: line-rate lookups whatever the tables look
//     like, a per-stage pipeline latency, and a control path whose
//     flow-mod processing contends with forwarding (the reactiveness
//     experiment's mechanism).
package switches

import (
	"manorm/internal/dataplane"
	"manorm/internal/mat"
	"manorm/internal/packet"
)

// Switch is a programmable switch model: install a pipeline, process
// packets, apply control-plane updates.
type Switch interface {
	// Name identifies the model ("ovs", "eswitch", ...).
	Name() string
	// Install programs the pipeline, replacing any previous program.
	Install(p *mat.Pipeline) error
	// Process forwards one packet. For software models this performs the
	// real classification work that the benchmarks time.
	Process(pkt *packet.Packet) (dataplane.Verdict, error)
	// ProcessFrame forwards one wire-format frame: header parsing
	// (including IPv4 checksum verification) plus Process — the
	// end-to-end per-packet work a software datapath performs, and what
	// the Table 1 measurements time. Malformed frames drop.
	ProcessFrame(frame []byte) (dataplane.Verdict, error)
	// ApplyMods applies a control-plane update of n flow modifications,
	// invalidating whatever state the model caches.
	ApplyMods(n int) error
	// Counters snapshots the per-entry packet counters of one pipeline
	// stage (the OpenFlow multipart flow-stats view).
	Counters(stage int) []uint64
	// Perf exposes the model's analytic performance parameters.
	Perf() PerfModel
}

// PerfModel carries the analytic part of a switch's performance behavior.
// Software models report zero HWLineRateMpps (throughput is the measured
// packet-processing rate); the hardware model forwards at line rate and
// derives latency and update behavior from these constants.
type PerfModel struct {
	// HWLineRateMpps, when positive, caps/fixes throughput at the
	// hardware line rate regardless of software service time (64-byte
	// packets on a 10 Gbps port ≈ 14.88 Mpps; the paper's NoviFlow test
	// reached ~10.7 Mpps through its harness).
	HWLineRateMpps float64
	// BaseLatencyNs is the fixed port-to-port latency.
	BaseLatencyNs float64
	// PerTableLatencyNs is added per pipeline stage traversed — the
	// "longer pipeline" cost the paper observes for goto chaining on the
	// NoviFlow (§5: 6.4 → 8.4 µs).
	PerTableLatencyNs float64
	// QueueFactor scales measured software service time into reported
	// latency (a stand-in for batching/queueing in software datapaths).
	QueueFactor float64
	// ModStallNsBase and ModStallNsPerEntry model the forwarding stall
	// caused by one flow-mod: hardware TCAM updates shuffle entries, so
	// the stall grows with the updated table's size.
	ModStallNsBase     float64
	ModStallNsPerEntry float64
}

// Verdicts carry the number of tables actually traversed
// (dataplane.Verdict.Tables); the benchmark harness feeds that into
// PerTableLatencyNs rather than guessing from static pipeline shape.
