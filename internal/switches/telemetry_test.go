package switches

import (
	"sync"
	"testing"

	"manorm/internal/dataplane"
	"manorm/internal/telemetry"
	"manorm/internal/trafficgen"
	"manorm/internal/usecases"
)

// drive installs the goto representation of a small gwlb workload and
// pushes one traffic cycle through the switch.
func drive(t *testing.T, sw Switch) *trafficgen.Stream {
	t.Helper()
	g := usecases.Generate(5, 4, 11)
	p, err := g.Build(usecases.RepGoto)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Install(p); err != nil {
		t.Fatal(err)
	}
	stream := trafficgen.GwLB(g, 256, 1.0, 12)
	for i := 0; i < stream.Len(); i++ {
		if _, err := sw.Process(stream.Next()); err != nil {
			t.Fatal(err)
		}
	}
	return stream
}

// TestAllModelsImplementStats checks the unified Provider surface: every
// switch model reports a named snapshot with per-stage match counters and
// a pipeline depth after forwarding traffic.
func TestAllModelsImplementStats(t *testing.T) {
	for _, sw := range allSwitches() {
		drive(t, sw)
		snap := sw.Stats()
		if snap.Name != sw.Name() {
			t.Errorf("%s: snapshot name %q", sw.Name(), snap.Name)
		}
		if d, ok := snap.Gauge("pipeline_depth"); !ok || d <= 0 {
			t.Errorf("%s: pipeline_depth = %v,%v", sw.Name(), d, ok)
		}
		var matched uint64
		for name, v := range snap.Counters {
			if len(name) > 5 && name[:5] == "table" {
				matched += v
			}
		}
		if matched == 0 {
			t.Errorf("%s: no table match counts in %+v", sw.Name(), snap.Counters)
		}
	}
}

func TestESwitchStatsListsTemplates(t *testing.T) {
	sw := NewESwitch()
	drive(t, sw)
	snap := sw.Stats()
	found := false
	for name := range snap.Counters {
		if len(name) > 8 && name[:8] == "template" {
			found = true
		}
	}
	if !found {
		t.Errorf("no template counters in %+v", snap.Counters)
	}
}

func TestNoviFlowStatsListsTCAMSizes(t *testing.T) {
	sw := NewNoviFlow()
	drive(t, sw)
	snap := sw.Stats()
	if v, ok := snap.Gauge("tcam_largest_stage_entries"); !ok || v <= 0 {
		t.Errorf("tcam_largest_stage_entries = %v,%v in %+v", v, ok, snap.Gauges)
	}
}

// TestOVSStatsMatchesDeprecatedAtomics pins the migration contract: the
// snapshot's cache counters equal the deprecated public atomics, and the
// hit ratio is derived from them.
func TestOVSStatsMatchesDeprecatedAtomics(t *testing.T) {
	sw := NewOVS()
	drive(t, sw)
	snap := sw.Stats()
	if got := snap.Counters["emc_hits"]; got != sw.Hits.Load() {
		t.Errorf("emc_hits = %d, atomic = %d", got, sw.Hits.Load())
	}
	if got := snap.Counters["megaflow_hits"]; got != sw.MegaHits.Load() {
		t.Errorf("megaflow_hits = %d, atomic = %d", got, sw.MegaHits.Load())
	}
	if got := snap.Counters["slow_misses"]; got != sw.Misses.Load() {
		t.Errorf("slow_misses = %d, atomic = %d", got, sw.Misses.Load())
	}
	if snap.Counters["slow_misses"] == 0 {
		t.Fatal("cold-start traffic recorded no slow-path misses")
	}
	if r, ok := snap.Gauge("cache_hit_ratio"); !ok || r < 0 || r > 1 {
		t.Errorf("cache_hit_ratio = %v,%v", r, ok)
	}
	if v, ok := snap.Gauge("emc_entries"); !ok || v != float64(sw.CacheSize()) {
		t.Errorf("emc_entries = %v,%v, CacheSize = %d", v, ok, sw.CacheSize())
	}
}

// TestOVSResetDrainsWorkers is the regression test for the Reset fix: all
// per-worker pending stat accumulators (primary, pooled frame workers)
// must be drained and discarded, so a post-Reset snapshot is zero even
// after batched traffic through the worker pool.
func TestOVSResetDrainsWorkers(t *testing.T) {
	sw := NewOVS()
	stream := drive(t, sw)
	frames, _ := trafficgen.Wire(stream)
	// Push frames through the pooled per-frame and batched paths too.
	out := make([]dataplane.Verdict, len(frames))
	if err := sw.ProcessBatch(frames, out); err != nil {
		t.Fatal(err)
	}
	for _, f := range frames[:16] {
		if _, err := sw.ProcessFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	pre := sw.Stats()
	if pre.Counters["emc_hits"]+pre.Counters["megaflow_hits"]+pre.Counters["slow_misses"] == 0 {
		t.Fatal("no cache activity before Reset")
	}

	sw.Reset()
	snap := sw.Stats()
	for _, name := range []string{"emc_hits", "megaflow_hits", "slow_misses"} {
		if v := snap.Counters[name]; v != 0 {
			t.Errorf("%s = %d after Reset, want 0", name, v)
		}
	}

	// Counting starts fresh afterwards.
	for i := 0; i < stream.Len(); i++ {
		if _, err := sw.Process(stream.Next()); err != nil {
			t.Fatal(err)
		}
	}
	post := sw.Stats()
	if post.Counters["emc_hits"]+post.Counters["megaflow_hits"]+post.Counters["slow_misses"] == 0 {
		t.Error("no cache activity recorded after Reset")
	}
}

// TestStatsConcurrentWithForwarding enforces the Provider contract that
// Stats is safe to call while the hot path runs; meaningful under -race
// (make check).
func TestStatsConcurrentWithForwarding(t *testing.T) {
	g := usecases.Generate(5, 4, 11)
	stream := trafficgen.GwLB(g, 256, 1.0, 12)
	frames, _ := trafficgen.Wire(stream)
	for _, sw := range allSwitches() {
		p, err := g.Build(usecases.RepGoto)
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.Install(p); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		stop := make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = sw.Stats()
				}
			}
		}()
		out := make([]dataplane.Verdict, len(frames))
		for r := 0; r < 4; r++ {
			if err := sw.ProcessBatch(frames, out); err != nil {
				t.Fatalf("%s: %v", sw.Name(), err)
			}
		}
		close(stop)
		wg.Wait()
	}
}

// TestWithTelemetryRegistersInstruments checks the functional option: a
// model built with WithTelemetry lands its pipeline instruments in the
// registry, and a registry snapshot nests the model's own Stats when the
// model is registered as a provider.
func TestWithTelemetryRegistersInstruments(t *testing.T) {
	reg := telemetry.NewRegistry()
	sw := NewOVS(WithTelemetry(reg))
	reg.Register("switch", sw)
	drive(t, sw)
	snap := reg.Snapshot()
	if v, ok := snap.Gauge("ovs.emc_entries"); !ok || v != float64(sw.CacheSize()) {
		t.Errorf("ovs.emc_entries = %v,%v, CacheSize = %d", v, ok, sw.CacheSize())
	}
	if v, ok := snap.Counter("switch/slow_misses"); !ok || v == 0 {
		t.Errorf("nested switch/slow_misses = %d,%v", v, ok)
	}
}
