package switches

import (
	"testing"

	"manorm/internal/dataplane"
	"manorm/internal/packet"
	"manorm/internal/trafficgen"
	"manorm/internal/usecases"
)

// Every switch model must accept a fused install and produce, frame for
// frame, the interpreted goto representation's verdicts — cold caches and
// warm.
func TestFusedInstallAgreesAcrossModels(t *testing.T) {
	g := usecases.Generate(8, 4, 31)
	gotoP, err := g.Build(usecases.RepGoto)
	if err != nil {
		t.Fatal(err)
	}
	fusedP, err := g.Build(usecases.RepFused)
	if err != nil {
		t.Fatal(err)
	}
	frames, _ := trafficgen.Wire(trafficgen.GwLB(g, 256, 0.8, 17))
	for _, name := range ModelNames() {
		ref, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		sut, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.Install(gotoP); err != nil {
			t.Fatalf("%s: install goto: %v", name, err)
		}
		if err := sut.Install(fusedP); err != nil {
			t.Fatalf("%s: install fused: %v", name, err)
		}
		refOut := make([]dataplane.Verdict, len(frames))
		sutOut := make([]dataplane.Verdict, len(frames))
		for pass := 0; pass < 2; pass++ { // pass 1 hits warmed caches
			if err := ref.ProcessBatch(frames, refOut); err != nil {
				t.Fatalf("%s: goto batch: %v", name, err)
			}
			if err := sut.ProcessBatch(frames, sutOut); err != nil {
				t.Fatalf("%s: fused batch: %v", name, err)
			}
			for i := range frames {
				if refOut[i].Drop != sutOut[i].Drop || refOut[i].Port != sutOut[i].Port {
					t.Fatalf("%s pass %d frame %d: goto=%+v fused=%+v", name, pass, i, refOut[i], sutOut[i])
				}
			}
		}
	}
}

// A fused install must surface its decision-structure size through the
// unified Stats view.
func TestFusedStatsSurface(t *testing.T) {
	g := usecases.Generate(4, 2, 7)
	fusedP, err := g.Build(usecases.RepFused)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := New("eswitch")
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Install(fusedP); err != nil {
		t.Fatal(err)
	}
	pkt := packet.TCP4(1, 2, 3, g.Services[0].VIP, 99, g.Services[0].Port)
	if _, err := sw.Process(pkt); err != nil {
		t.Fatal(err)
	}
	snap := sw.Stats()
	if snap.Gauges["fdd_rules"] <= 0 || snap.Gauges["fdd_nodes"] <= 0 {
		t.Fatalf("fused stats missing from snapshot: %+v", snap.Gauges)
	}
	if snap.Gauges["pipeline_depth"] != 1 {
		t.Fatalf("fused pipeline depth = %v, want 1", snap.Gauges["pipeline_depth"])
	}
}
