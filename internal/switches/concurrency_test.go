package switches

import (
	"fmt"
	"sync"
	"testing"

	"manorm/internal/dataplane"
	"manorm/internal/trafficgen"
	"manorm/internal/usecases"
)

// TestConcurrentFrameProcessing drives every switch model from many
// goroutines at once — half through the pooled switch-level frame APIs,
// half through dedicated Workers, with a control-plane goroutine firing
// ApplyMods throughout — and checks each verdict against a single-threaded
// reference. Run under -race this is the concurrency contract's enforcement
// (per-worker scratch and cache shards, atomic statistics, epoch-based
// revalidation).
func TestConcurrentFrameProcessing(t *testing.T) {
	g := usecases.Generate(8, 4, 3)
	p, err := g.Build(usecases.RepGoto)
	if err != nil {
		t.Fatal(err)
	}
	stream := trafficgen.GwLB(g, 512, 0.9, 5)
	frames, _ := trafficgen.Wire(stream)

	// Reference verdicts, single-threaded, from the raw dataplane.
	ref, err := dataplane.Compile(p, dataplane.AutoTemplates)
	if err != nil {
		t.Fatal(err)
	}
	refCtx := ref.NewCtx()
	want := make([]dataplane.Verdict, stream.Len())
	for i := range want {
		v, err := ref.Process(stream.Next(), refCtx)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}
	check := func(i int, v dataplane.Verdict) error {
		w := want[i%len(want)]
		if v.Drop != w.Drop || (!v.Drop && v.Port != w.Port) {
			return fmt.Errorf("frame %d: verdict (%v,%d) != reference (%v,%d)",
				i%len(want), v.Drop, v.Port, w.Drop, w.Port)
		}
		return nil
	}

	const (
		goroutines = 6
		passes     = 3
		batchSize  = 32
	)
	for _, sw := range allSwitches() {
		sw := sw
		t.Run(sw.Name(), func(t *testing.T) {
			if err := sw.Install(p); err != nil {
				t.Fatal(err)
			}
			errs := make(chan error, goroutines+1)

			// Control plane: concurrent cache revalidations.
			stop := make(chan struct{})
			var mods sync.WaitGroup
			mods.Add(1)
			go func() {
				defer mods.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if err := sw.ApplyMods(1); err != nil {
						errs <- err
						return
					}
				}
			}()

			var wg sync.WaitGroup
			for w := 0; w < goroutines; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					if w%2 == 0 {
						// Pooled switch-level single-frame path.
						for pass := 0; pass < passes; pass++ {
							for i, f := range frames {
								v, err := sw.ProcessFrame(f)
								if err != nil {
									errs <- err
									return
								}
								if err := check(i, v); err != nil {
									errs <- err
									return
								}
							}
						}
						return
					}
					// Dedicated worker, batched path.
					worker := sw.NewWorker()
					out := make([]dataplane.Verdict, batchSize)
					for pass := 0; pass < passes; pass++ {
						for off := 0; off < len(frames); off += batchSize {
							end := off + batchSize
							if end > len(frames) {
								end = len(frames)
							}
							if err := worker.ProcessBatch(frames[off:end], out); err != nil {
								errs <- err
								return
							}
							for j := 0; j < end-off; j++ {
								if err := check(off+j, out[j]); err != nil {
									errs <- err
									return
								}
							}
						}
					}
				}(w)
			}

			// Forwarders terminate on their own; then stop the control-plane
			// loop and drain any errors.
			wg.Wait()
			close(stop)
			mods.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

// TestConcurrentBatchAgainstInstall exercises the pointer-swap Install
// path: forwarding goroutines keep processing while the control plane
// alternates between two representations. Every verdict must match one of
// the two programs' references (both agree on this workload, so a single
// reference suffices).
func TestConcurrentBatchAgainstInstall(t *testing.T) {
	g := usecases.Generate(8, 4, 3)
	pGoto, err := g.Build(usecases.RepGoto)
	if err != nil {
		t.Fatal(err)
	}
	pUni, err := g.Build(usecases.RepUniversal)
	if err != nil {
		t.Fatal(err)
	}
	stream := trafficgen.GwLB(g, 256, 1.0, 9)
	frames, _ := trafficgen.Wire(stream)

	ref, err := dataplane.Compile(pUni, dataplane.AutoTemplates)
	if err != nil {
		t.Fatal(err)
	}
	refCtx := ref.NewCtx()
	want := make([]dataplane.Verdict, stream.Len())
	for i := range want {
		v, err := ref.Process(stream.Next(), refCtx)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}

	for _, sw := range allSwitches() {
		sw := sw
		t.Run(sw.Name(), func(t *testing.T) {
			if err := sw.Install(pGoto); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			errs := make(chan error, 4)
			stop := make(chan struct{})

			wg.Add(1)
			go func() {
				defer wg.Done()
				flip := false
				for {
					select {
					case <-stop:
						return
					default:
					}
					p := pGoto
					if flip {
						p = pUni
					}
					flip = !flip
					if err := sw.Install(p); err != nil {
						errs <- err
						return
					}
				}
			}()

			var fw sync.WaitGroup
			for w := 0; w < 3; w++ {
				fw.Add(1)
				go func() {
					defer fw.Done()
					worker := sw.NewWorker()
					out := make([]dataplane.Verdict, len(frames))
					for pass := 0; pass < 4; pass++ {
						if err := worker.ProcessBatch(frames, out); err != nil {
							errs <- err
							return
						}
						for i, v := range out {
							w := want[i]
							if v.Drop != w.Drop || (!v.Drop && v.Port != w.Port) {
								errs <- fmt.Errorf("frame %d: verdict (%v,%d) != reference (%v,%d)",
									i, v.Drop, v.Port, w.Drop, w.Port)
								return
							}
						}
					}
				}()
			}
			fw.Wait()
			close(stop)
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}
