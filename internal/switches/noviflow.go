package switches

import (
	"fmt"

	"manorm/internal/dataplane"
	"manorm/internal/mat"
	"manorm/internal/packet"
	"manorm/internal/telemetry"
)

// NoviFlow models a hardware OpenFlow switch built around TCAM pipeline
// stages (the paper's NoviSwitch 2128). Functionally it executes the
// installed pipeline exactly; its performance character is analytic:
//
//   - Throughput is line-rate regardless of table shapes — TCAM lookups
//     are O(1) — so both representations forward at ~10.7 Mpps (Table 1).
//   - Latency grows with the number of pipeline stages traversed
//     (6.4 µs universal → 8.4 µs goto in Table 1).
//   - Control-plane flow-mods stall forwarding while the TCAM is
//     reorganized; the stall grows with the size of the updated table.
//     This is the mechanism behind the reactiveness experiment (Fig. 4):
//     universal updates need M times more mods, each touching a table
//     M·N entries large, so at 100 updates/s the universal pipeline
//     loses ~20× throughput while the normalized one is unaffected.
type NoviFlow struct {
	dpSwitch
	ctx     *dataplane.Ctx
	entries []int // per-stage entry counts of the installed pipeline
}

// NewNoviFlow creates an unprogrammed hardware switch model.
func NewNoviFlow(opts ...Option) *NoviFlow {
	s := &NoviFlow{}
	s.applyCfg(buildCfg(opts))
	return s
}

// Name returns "noviflow".
func (s *NoviFlow) Name() string { return "noviflow" }

// Install programs the TCAM stages.
func (s *NoviFlow) Install(p *mat.Pipeline) error {
	dp, err := dataplane.Compile(p, dataplane.AutoTemplates, s.dpOpts()...)
	if err != nil {
		return fmt.Errorf("noviflow: %w", err)
	}
	s.ctx = dp.NewCtx()
	s.entries = nil
	for i := range p.Stages {
		s.entries = append(s.entries, len(p.Stages[i].Table.Entries))
	}
	s.dp.Store(dp)
	return nil
}

// Process executes the pipeline for functional results; the hardware's
// timing comes from Perf, not from the software execution time.
func (s *NoviFlow) Process(pkt *packet.Packet) (dataplane.Verdict, error) {
	dp := s.dp.Load()
	if dp == nil {
		return dataplane.Verdict{}, errNotProgrammed
	}
	return dp.Process(pkt, s.ctx)
}

// ApplyMods is functionally a no-op (the benchmark reinstalls pipelines
// wholesale); its cost model lives in Perf and ReactiveThroughput.
func (s *NoviFlow) ApplyMods(int) error { return nil }

// Perf returns the hardware constants: line rate, per-stage latency, and
// the TCAM update stall model.
func (s *NoviFlow) Perf() PerfModel {
	return PerfModel{
		HWLineRateMpps:    10.73,
		BaseLatencyNs:     6_400,
		PerTableLatencyNs: 2_000,
		// One TCAM mod: fixed microcode cost plus per-entry shuffling in
		// the updated stage. Calibrated so that 100 updates/s × 8 mods on
		// a 160-entry universal table costs ~95% of forwarding capacity
		// (the paper's 20× loss) while 100 × 1 mod on a 20-entry stage is
		// invisible.
		ModStallNsBase:     200_000,
		ModStallNsPerEntry: 8_000,
	}
}

// Stats reports the per-stage match counts plus the TCAM capacity view:
// per-stage entry counts and the largest-stage size (the update-stall
// driver of the reactiveness model).
func (s *NoviFlow) Stats() telemetry.Snapshot {
	snap := s.pipelineStats("noviflow")
	if snap.Gauges == nil {
		snap.Gauges = make(map[string]float64, len(s.entries)+1)
	}
	for i, n := range s.entries {
		snap.Gauges[fmt.Sprintf("tcam_stage%d_entries", i)] = float64(n)
	}
	snap.Gauges["tcam_largest_stage_entries"] = float64(s.LargestStageEntries())
	return snap
}

// LargestStageEntries returns the entry count of the switch's largest
// installed stage — the table a service update rewrites in the worst case.
func (s *NoviFlow) LargestStageEntries() int {
	max := 0
	for _, n := range s.entries {
		if n > max {
			max = n
		}
	}
	return max
}

// ReactiveThroughput evaluates the reactiveness model: with updRate
// service updates per second, each needing modsPerUpdate flow-mods against
// a stage of stageEntries entries, the fraction of time the forwarding
// pipeline is stalled is
//
//	busy = updRate × modsPerUpdate × (base + perEntry × stageEntries)
//
// and throughput is the line rate scaled by the unstalled fraction,
// floored at the switch's degraded slow-path rate (the paper's Fig. 4
// shows ~20× loss, not total collapse).
func (s *NoviFlow) ReactiveThroughput(updRate float64, modsPerUpdate, stageEntries int) float64 {
	pm := s.Perf()
	stallNsPerSec := updRate * float64(modsPerUpdate) * (pm.ModStallNsBase + pm.ModStallNsPerEntry*float64(stageEntries))
	busy := stallNsPerSec / 1e9
	avail := 1 - busy
	const floor = 0.045 // residual forwarding during constant reorganization
	if avail < floor {
		avail = floor
	}
	return pm.HWLineRateMpps * avail
}

// ReactiveLatency evaluates the latency side of Fig. 4. The paper finds
// latency "mostly independent from the control plane churn" for both
// representations, with a roughly 25% penalty for the longer normalized
// pipeline: TCAM reorganization contends with table *writes* (capacity)
// while admitted packets still flow through the ASIC stages at fixed
// per-stage delay. The model therefore reports pure pipeline-depth
// latency.
func (s *NoviFlow) ReactiveLatency(tablesTraversed float64) float64 {
	pm := s.Perf()
	base := pm.BaseLatencyNs
	if tablesTraversed > 1 {
		base += pm.PerTableLatencyNs * (tablesTraversed - 1)
	}
	return base
}
