package switches

import (
	"math/rand"
	"testing"

	"manorm/internal/dataplane"
	"manorm/internal/packet"
	"manorm/internal/usecases"
)

func TestMegaflowCoversMicroflows(t *testing.T) {
	// Distinct microflows that agree on the traced bits must share one
	// megaflow: after one slow-path traversal per pipeline path, further
	// new microflows hit the megaflow layer, not the slow path.
	g := usecases.Generate(10, 8, 3)
	s := NewOVS()
	p, err := g.Build(usecases.RepGoto)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Install(p); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(9))
	// Phase 1: one packet per (service, backend prefix) path.
	for _, svc := range g.Services {
		for b := 0; b < 8; b++ {
			src := uint32(b)<<29 | rng.Uint32()>>3
			if _, err := s.Process(packet.TCP4(1, 2, src, svc.VIP, uint16(rng.Intn(60000)), svc.Port)); err != nil {
				t.Fatal(err)
			}
		}
	}
	slowAfterWarm := s.Misses.Load()
	mfAfterWarm := s.MegaflowCount()
	if mfAfterWarm == 0 {
		t.Fatalf("no megaflows installed")
	}
	// There are at most N×M distinct paths (plus none missed here).
	if mfAfterWarm > 10*8 {
		t.Errorf("megaflows = %d, want <= 80 paths", mfAfterWarm)
	}

	// Phase 2: thousands of NEW microflows (fresh src low bits and
	// ports). No new slow-path traversals may happen.
	for i := 0; i < 5000; i++ {
		svc := g.Services[rng.Intn(len(g.Services))]
		src := rng.Uint32()
		if _, err := s.Process(packet.TCP4(1, 2, src, svc.VIP, uint16(rng.Intn(60000)), svc.Port)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Misses.Load() != slowAfterWarm {
		t.Errorf("new microflows took the slow path: %d -> %d misses", slowAfterWarm, s.Misses.Load())
	}
	if s.MegaHits.Load() == 0 {
		t.Errorf("megaflow layer never hit")
	}
}

func TestMegaflowVerdictsAgreeWithSlowPath(t *testing.T) {
	g := usecases.Generate(8, 4, 5)
	s := NewOVS()
	p, err := g.Build(usecases.RepMetadata)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Install(p); err != nil {
		t.Fatal(err)
	}
	ref, err := dataplane.Compile(p, dataplane.AutoTemplates)
	if err != nil {
		t.Fatal(err)
	}
	refCtx := ref.NewCtx()

	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 20000; i++ {
		var dst uint32
		var port uint16
		if rng.Intn(4) > 0 {
			svc := g.Services[rng.Intn(len(g.Services))]
			dst, port = svc.VIP, svc.Port
		} else {
			dst, port = rng.Uint32(), uint16(rng.Intn(1<<16)) // mostly misses
		}
		pkt := packet.TCP4(1, 2, rng.Uint32(), dst, uint16(rng.Intn(1<<16)), port)
		got, err := s.Process(pkt)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Process(packet.TCP4(1, 2, pkt.IPSrc, pkt.IPDst, pkt.SrcPort, pkt.DstPort), refCtx)
		if err != nil {
			t.Fatal(err)
		}
		if got.Drop != want.Drop || (!got.Drop && got.Port != want.Port) {
			t.Fatalf("packet %d: cached verdict (%v,%d) != slow path (%v,%d)",
				i, got.Drop, got.Port, want.Drop, want.Port)
		}
	}
	// The megaflow layer must have absorbed the random microflows.
	if s.MegaHits.Load() == 0 {
		t.Errorf("megaflow layer idle: emc=%d mega=%d slow=%d", s.Hits.Load(), s.MegaHits.Load(), s.Misses.Load())
	}
	// A repeated microflow hits the EMC on its second appearance.
	repeat := packet.TCP4(1, 2, 42, g.Services[0].VIP, 4242, g.Services[0].Port)
	if _, err := s.Process(repeat); err != nil {
		t.Fatal(err)
	}
	emcBefore := s.Hits.Load()
	if _, err := s.Process(packet.TCP4(1, 2, 42, g.Services[0].VIP, 4242, g.Services[0].Port)); err != nil {
		t.Fatal(err)
	}
	if s.Hits.Load() != emcBefore+1 {
		t.Errorf("repeated microflow missed the EMC")
	}
}

func TestMegaflowFlushedOnUpdate(t *testing.T) {
	g := usecases.Fig1()
	s := NewOVS()
	p, _ := g.Build(usecases.RepUniversal)
	if err := s.Install(p); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Process(packet.TCP4(1, 2, 3, 0xC0000201, 4, 80)); err != nil {
		t.Fatal(err)
	}
	if s.MegaflowCount() == 0 {
		t.Fatalf("no megaflow installed")
	}
	if err := s.ApplyMods(1); err != nil {
		t.Fatal(err)
	}
	if s.MegaflowCount() != 0 {
		t.Errorf("megaflows survived revalidation")
	}
}

func TestTraceMasksAreMinimal(t *testing.T) {
	// The gwlb goto pipeline consults ip_dst (exact), tcp_dst (exact)
	// and ip_src only up to the backend prefix length: the trace must
	// reflect that, so one megaflow covers a whole /1 of clients.
	g := usecases.Fig1()
	p, err := g.Build(usecases.RepGoto)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := dataplane.Compile(p, dataplane.AutoTemplates)
	if err != nil {
		t.Fatal(err)
	}
	tr := dataplane.NewTrace()
	pkt := packet.TCP4(1, 2, 0x01000000, 0xC0000201, 1234, 80)
	if _, err := dp.ProcessTraced(pkt, dp.NewCtx(), tr); err != nil {
		t.Fatal(err)
	}
	if got := tr.PLens[packet.FieldIPSrc]; got != 1 {
		t.Errorf("ip_src traced to /%d, want /1 (tenant-1 split)", got)
	}
	if got := tr.PLens[packet.FieldIPDst]; got != 32 {
		t.Errorf("ip_dst traced to /%d, want /32", got)
	}
	if got := tr.PLens[packet.FieldTCPDst]; got != 16 {
		t.Errorf("tcp_dst traced to /%d, want /16", got)
	}
	// Fields no table consults must stay wildcarded.
	if _, ok := tr.PLens[packet.FieldEthSrc]; ok {
		t.Errorf("untouched field eth_src traced")
	}
}
