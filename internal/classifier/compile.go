package classifier

import (
	"fmt"

	"manorm/internal/mat"
)

// Template selects a classifier implementation.
type Template int

const (
	// Auto picks the most efficient template the table's shape admits:
	// exact if all cells are exact, LPM if a single column carries
	// prefixes, ternary otherwise. This is the datapath-specialization
	// strategy the paper describes for ESwitch (§5).
	Auto Template = iota
	// ForceExact compiles the exact-hash template (errors on wildcards).
	ForceExact
	// ForceLPM compiles the single-column trie (errors on other shapes).
	ForceLPM
	// ForceTernary compiles the linear-scan template (any shape).
	ForceTernary
	// ForceTupleSpace compiles tuple space search (any shape).
	ForceTupleSpace
	// ForceFDD compiles the field-ordered decision structure with
	// first-match-in-entry-order semantics (any shape). This is the
	// template pipeline fusion (internal/fdd) lowers to; unlike the other
	// templates it must not re-sort entries by specificity.
	ForceFDD
)

// String names the template.
func (t Template) String() string {
	switch t {
	case Auto:
		return "auto"
	case ForceExact:
		return "exact"
	case ForceLPM:
		return "lpm"
	case ForceTernary:
		return "ternary"
	case ForceTupleSpace:
		return "tss"
	case ForceFDD:
		return "fdd"
	default:
		return fmt.Sprintf("Template(%d)", int(t))
	}
}

// Shape reports the structural class of a table's match columns: "exact"
// (every column uniformly exact or uniformly wildcard), "lpm" (a single
// constrained column, prefixes allowed), or "ternary" (anything else).
// Normalization exists to push tables from "ternary" toward the first two.
func Shape(t *mat.Table) string {
	cols, pats := extractPatterns(t)
	exactish := true // every column all-exact or all-any
	constrained := 0 // columns with at least one non-wildcard cell
	for i := range cols {
		sawExact, sawAny, sawPrefix := false, false, false
		for _, p := range pats {
			switch {
			case p.cells[i].IsAny():
				sawAny = true
			case p.cells[i].IsExact(cols[i].width):
				sawExact = true
			default:
				sawPrefix = true
			}
		}
		if sawPrefix || (sawExact && sawAny) {
			exactish = false
		}
		if sawExact || sawPrefix {
			constrained++
		}
	}
	switch {
	case exactish:
		return "exact"
	case constrained <= 1:
		return "lpm"
	default:
		return "ternary"
	}
}

// Compile builds a classifier for the table with the requested template.
func Compile(t *mat.Table, tmpl Template) (Classifier, error) {
	switch tmpl {
	case Auto:
		switch Shape(t) {
		case "exact":
			return NewExact(t)
		case "lpm":
			return NewLPM(t)
		default:
			return NewTernary(t), nil
		}
	case ForceExact:
		return NewExact(t)
	case ForceLPM:
		return NewLPM(t)
	case ForceTernary:
		return NewTernary(t), nil
	case ForceTupleSpace:
		return NewTupleSpace(t), nil
	case ForceFDD:
		return NewFDD(t)
	default:
		return nil, fmt.Errorf("classifier: unknown template %d", int(tmpl))
	}
}
