// Package classifier implements the packet-classifier templates a
// match-action table can be compiled to: exact-match hashing, single-field
// longest-prefix matching, priority-ordered ternary linear search, and
// OVS-style tuple-space search.
//
// The template a table can use is decided by the *shape* of its match
// columns — and that shape is exactly what normalization changes. A
// universal table mixing prefixes with exact columns is stuck with the
// slow ternary template, while its normalized stages compile to the fast
// exact and LPM templates; this mechanism is the paper's explanation for
// ESwitch's 1.5× throughput gain (§5), and the models in internal/switches
// inherit it from here.
package classifier

import (
	"fmt"
	"sort"

	"manorm/internal/mat"
)

// Classifier finds the highest-priority entry matching a key. Keys carry
// one concrete value per match column, in the table's column order.
// Implementations are immutable after construction and safe for concurrent
// lookups.
type Classifier interface {
	// Lookup returns the matching entry index, or -1 on miss.
	Lookup(key []uint64) int
	// Template names the implementation ("exact", "lpm", ...).
	Template() string
}

// column describes one match column of a compiled table.
type column struct {
	width uint8
}

// pattern is one entry's match row: a cell per column plus its priority
// (total significant bits — most-specific-first, the convention of
// mat.Pipeline.Eval).
type pattern struct {
	cells []mat.Cell
	prio  int
	idx   int
}

// extractPatterns pulls the match columns out of a table. The returned
// widths describe the key layout expected by all classifiers built from
// this table.
func extractPatterns(t *mat.Table) (cols []column, pats []pattern) {
	fields := t.Schema.Fields()
	cols = make([]column, len(fields))
	for i, f := range fields {
		cols[i] = column{width: t.Schema[f].Width}
	}
	pats = make([]pattern, len(t.Entries))
	for ei, e := range t.Entries {
		cells := make([]mat.Cell, len(fields))
		prio := 0
		for i, f := range fields {
			cells[i] = e[f]
			prio += int(e[f].PLen)
		}
		pats[ei] = pattern{cells: cells, prio: prio, idx: ei}
	}
	return cols, pats
}

// Ternary is the fallback template: a priority-ordered linear scan with
// per-column masked compare — the "slowest wildcard matching template" of
// the paper's ESwitch discussion. It accepts any table shape.
type Ternary struct {
	cols []column
	pats []pattern // sorted by descending priority
}

// NewTernary builds a ternary classifier for the table's match columns.
func NewTernary(t *mat.Table) *Ternary {
	cols, pats := extractPatterns(t)
	sort.SliceStable(pats, func(i, j int) bool { return pats[i].prio > pats[j].prio })
	return &Ternary{cols: cols, pats: pats}
}

// Lookup scans patterns in priority order.
func (c *Ternary) Lookup(key []uint64) int {
	for pi := range c.pats {
		p := &c.pats[pi]
		hit := true
		for i := range p.cells {
			if !p.cells[i].Matches(key[i], c.cols[i].width) {
				hit = false
				break
			}
		}
		if hit {
			return p.idx
		}
	}
	return -1
}

// Template returns "ternary".
func (c *Ternary) Template() string { return "ternary" }

// Validate checks that a key has the arity the classifier was built for.
// Helper shared by tests.
func keyArity(cols []column, key []uint64) error {
	if len(key) != len(cols) {
		return fmt.Errorf("classifier: key arity %d, want %d", len(key), len(cols))
	}
	return nil
}
