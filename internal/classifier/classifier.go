// Package classifier implements the packet-classifier templates a
// match-action table can be compiled to: exact-match hashing, single-field
// longest-prefix matching, priority-ordered ternary linear search, and
// OVS-style tuple-space search.
//
// The template a table can use is decided by the *shape* of its match
// columns — and that shape is exactly what normalization changes. A
// universal table mixing prefixes with exact columns is stuck with the
// slow ternary template, while its normalized stages compile to the fast
// exact and LPM templates; this mechanism is the paper's explanation for
// ESwitch's 1.5× throughput gain (§5), and the models in internal/switches
// inherit it from here.
package classifier

import (
	"fmt"
	"sort"

	"manorm/internal/mat"
)

// Classifier finds the highest-priority entry matching a key. Keys carry
// one concrete value per match column, in the table's column order.
// Implementations are immutable after construction and safe for concurrent
// lookups.
type Classifier interface {
	// Lookup returns the matching entry index, or -1 on miss.
	Lookup(key []uint64) int
	// Template names the implementation ("exact", "lpm", ...).
	Template() string
}

// column describes one match column of a compiled table.
type column struct {
	width uint8
}

// pattern is one entry's match row: a cell per column plus its priority
// (total significant bits — most-specific-first, the convention of
// mat.Pipeline.Eval).
type pattern struct {
	cells []mat.Cell
	prio  int
	idx   int
}

// extractPatterns pulls the match columns out of a table. The returned
// widths describe the key layout expected by all classifiers built from
// this table.
func extractPatterns(t *mat.Table) (cols []column, pats []pattern) {
	fields := t.Schema.Fields()
	cols = make([]column, len(fields))
	for i, f := range fields {
		cols[i] = column{width: t.Schema[f].Width}
	}
	pats = make([]pattern, len(t.Entries))
	for ei, e := range t.Entries {
		cells := make([]mat.Cell, len(fields))
		prio := 0
		for i, f := range fields {
			cells[i] = e[f]
			prio += int(e[f].PLen)
		}
		pats[ei] = pattern{cells: cells, prio: prio, idx: ei}
	}
	return cols, pats
}

// Ternary is the fallback template: a priority-ordered linear scan with
// per-column masked compare — the "slowest wildcard matching template" of
// the paper's ESwitch discussion. It accepts any table shape.
//
// The scan is compiled at construction time: every entry's per-column
// (mask, value) words are precomputed into two flat row-major arrays, so a
// lookup is pure word compares over contiguous memory — no mat.Cell calls,
// no per-cell mask recomputation. Columns that are wildcarded in every
// entry are dropped from the compiled rows entirely. Rows are sorted by
// descending priority, so the first hit is the answer (the priority-order
// early exit).
type Ternary struct {
	nCols int // compiled (active) columns per row
	// active maps compiled column slots to key positions.
	active []int
	// masks/vals hold nRows × nCols words, row-major: row r matches iff
	// key[active[i]] & masks[r*nCols+i] == vals[r*nCols+i] for all i.
	masks []uint64
	vals  []uint64
	idx   []int32 // entry index per compiled row
}

// NewTernary builds a ternary classifier for the table's match columns,
// precomputing the per-entry mask/value words.
func NewTernary(t *mat.Table) *Ternary {
	cols, pats := extractPatterns(t)
	sort.SliceStable(pats, func(i, j int) bool { return pats[i].prio > pats[j].prio })

	// Keep only columns constrained by at least one entry; all-wildcard
	// columns match any key word and would waste scan bandwidth.
	var active []int
	for i := range cols {
		for _, p := range pats {
			if !p.cells[i].IsAny() {
				active = append(active, i)
				break
			}
		}
	}
	c := &Ternary{
		nCols:  len(active),
		active: active,
		masks:  make([]uint64, 0, len(pats)*len(active)),
		vals:   make([]uint64, 0, len(pats)*len(active)),
		idx:    make([]int32, len(pats)),
	}
	for r, p := range pats {
		c.idx[r] = int32(p.idx)
		for _, i := range active {
			m := prefixMask64(p.cells[i].PLen, cols[i].width)
			c.masks = append(c.masks, m)
			c.vals = append(c.vals, p.cells[i].Bits&m)
		}
	}
	return c
}

// prefixMask64 returns the mask selecting the top plen bits of a width-bit
// value (right-aligned in 64 bits).
func prefixMask64(plen, width uint8) uint64 {
	if plen == 0 {
		return 0
	}
	if plen > width {
		plen = width
	}
	full := ^uint64(0)
	if width < 64 {
		full = (uint64(1) << width) - 1
	}
	return full &^ (full >> plen)
}

// Lookup scans the compiled rows in priority order and returns on the
// first hit.
func (c *Ternary) Lookup(key []uint64) int {
	n := c.nCols
	if n == 0 {
		if len(c.idx) > 0 {
			return int(c.idx[0])
		}
		return -1
	}
	base := 0
	for r := range c.idx {
		hit := true
		for i := 0; i < n; i++ {
			if key[c.active[i]]&c.masks[base+i] != c.vals[base+i] {
				hit = false
				break
			}
		}
		if hit {
			return int(c.idx[r])
		}
		base += n
	}
	return -1
}

// Template returns "ternary".
func (c *Ternary) Template() string { return "ternary" }

// Validate checks that a key has the arity the classifier was built for.
// Helper shared by tests.
func keyArity(cols []column, key []uint64) error {
	if len(key) != len(cols) {
		return fmt.Errorf("classifier: key arity %d, want %d", len(key), len(cols))
	}
	return nil
}
