package classifier

import (
	"fmt"

	"manorm/internal/mat"
)

// Exact is the hash template: applicable when every match column is either
// exact in every entry or fully wildcarded in every entry (a real datapath
// compiler masks the dead columns out of the key). One hash probe per
// lookup, allocation-free.
type Exact struct {
	cols []column
	// active marks the columns participating in the hash.
	active []bool
	// colMask holds ^0 for active columns and 0 for dead ones, so lookups
	// mask and hash the key in one pass with no scratch copy.
	colMask []uint64
	buckets map[uint64][]exactEntry
}

type exactEntry struct {
	key []uint64 // masked: inactive columns zeroed
	idx int
}

// NewExact compiles the table to the exact-match template. It fails if any
// column mixes exact cells with prefixes or wildcards.
func NewExact(t *mat.Table) (*Exact, error) {
	cols, pats := extractPatterns(t)
	active := make([]bool, len(cols))
	for i := range cols {
		sawExact, sawAny := false, false
		for _, p := range pats {
			switch {
			case p.cells[i].IsAny():
				sawAny = true
			case p.cells[i].IsExact(cols[i].width):
				sawExact = true
			default:
				return nil, fmt.Errorf("classifier: exact template cannot hold prefix %s in column %d",
					p.cells[i].Format(cols[i].width), i)
			}
		}
		if sawExact && sawAny {
			return nil, fmt.Errorf("classifier: column %d mixes exact and wildcard cells", i)
		}
		active[i] = sawExact
	}
	colMask := make([]uint64, len(cols))
	for i, a := range active {
		if a {
			colMask[i] = ^uint64(0)
		}
	}
	c := &Exact{cols: cols, active: active, colMask: colMask, buckets: make(map[uint64][]exactEntry, len(pats))}
	for _, p := range pats {
		key := make([]uint64, len(p.cells))
		for i, cell := range p.cells {
			if active[i] {
				key[i] = cell.Bits
			}
		}
		h := hashKey(key)
		c.buckets[h] = append(c.buckets[h], exactEntry{key: key, idx: p.idx})
	}
	return c, nil
}

// hashKey mixes the key words with an FNV-1a-style loop, one round per
// 64-bit word. The result keys a Go map (which re-hashes it), so one
// multiply per word is enough mixing for bucket grouping.
func hashKey(key []uint64) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range key {
		h ^= v
		h *= 1099511628211
	}
	return h
}

// Lookup probes the hash table and verifies the masked key. The key is
// masked and hashed in a single pass — no scratch buffer, no allocation.
func (c *Exact) Lookup(key []uint64) int {
	h := uint64(14695981039346656037)
	for i, v := range key {
		h ^= v & c.colMask[i]
		h *= 1099511628211
	}
	bucket := c.buckets[h]
	for i := range bucket {
		e := &bucket[i]
		ok := true
		for j := range e.key {
			if e.key[j] != key[j]&c.colMask[j] {
				ok = false
				break
			}
		}
		if ok {
			return e.idx
		}
	}
	return -1
}

// Template returns "exact".
func (c *Exact) Template() string { return "exact" }
