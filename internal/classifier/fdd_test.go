package classifier

import (
	"math/rand"
	"testing"

	"manorm/internal/mat"
)

// refFirstMatch is the semantics FDD must implement: scan entries in
// insertion order, return the first whose every cell matches.
func refFirstMatch(t *mat.Table, key []uint64) int {
	fields := t.Schema.Fields()
	for ei, e := range t.Entries {
		hit := true
		for i, f := range fields {
			if !e[f].Matches(key[i], t.Schema[f].Width) {
				hit = false
				break
			}
		}
		if hit {
			return ei
		}
	}
	return -1
}

// randomTable builds a table with overlapping exact/prefix/any cells in
// arbitrary order — the shape fused rule lists take.
func randomTable(rng *rand.Rand, entries int) *mat.Table {
	widths := []uint8{8, 12, 16}
	t := mat.New("fuzz", mat.Schema{
		mat.F("a", widths[0]), mat.F("b", widths[1]), mat.F("c", widths[2]),
		mat.A("out", 16),
	})
	for i := 0; i < entries; i++ {
		cells := make([]mat.Cell, 0, 4)
		for _, w := range widths {
			switch rng.Intn(3) {
			case 0:
				cells = append(cells, mat.Any())
			case 1:
				cells = append(cells, mat.Exact(rng.Uint64()&0x7, w)) // dense values: force overlaps
			default:
				cells = append(cells, mat.Prefix(rng.Uint64(), uint8(rng.Intn(int(w))+1), w))
			}
		}
		cells = append(cells, mat.Exact(uint64(i), 16))
		t.Add(cells...)
	}
	return t
}

// FDD lookups must agree with ordered first-match reference semantics on
// random tables and random keys, including keys matching several
// overlapping entries of differing specificity.
func TestFDDMatchesOrderedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		tab := randomTable(rng, rng.Intn(24)+1)
		c, err := NewFDD(tab)
		if err != nil {
			t.Fatalf("trial %d: NewFDD: %v", trial, err)
		}
		for k := 0; k < 200; k++ {
			key := []uint64{rng.Uint64() & 0x7, rng.Uint64() & 0xFFF, rng.Uint64() & 0x7}
			if k%4 == 0 { // bias keys toward entry patterns
				ei := rng.Intn(len(tab.Entries))
				fields := tab.Schema.Fields()
				for i, f := range fields {
					cell := tab.Entries[ei][f]
					if !cell.IsAny() {
						key[i] = cell.Bits
					}
				}
			}
			want := refFirstMatch(tab, key)
			got := c.Lookup(key)
			if got != want {
				t.Fatalf("trial %d key %v: FDD=%d want=%d (%s)", trial, key, got, want, c)
			}
		}
	}
}

// A later, more specific rule must lose to an earlier, broader one — the
// property that distinguishes FDD from every specificity-sorted template.
func TestFDDEntryOrderBeatsSpecificity(t *testing.T) {
	tab := mat.New("order", mat.Schema{mat.F("f", 8), mat.A("out", 16)})
	tab.Add(mat.Prefix(0x80, 1, 8), mat.Exact(0, 16)) // 1000_0000/1, first
	tab.Add(mat.Exact(0x81, 8), mat.Exact(1, 16))     // exact, second
	c, err := NewFDD(tab)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Lookup([]uint64{0x81}); got != 0 {
		t.Fatalf("first-match order violated: got entry %d, want 0", got)
	}
	if got := c.Lookup([]uint64{0x00}); got != -1 {
		t.Fatalf("expected miss, got %d", got)
	}
}

// The structure must expose its size for fusion-cost telemetry.
func TestFDDStats(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tab := randomTable(rng, 16)
	c, err := NewFDD(tab)
	if err != nil {
		t.Fatal(err)
	}
	if c.Template() != "fdd" {
		t.Fatalf("template = %q", c.Template())
	}
	if c.Leaves() == 0 || c.DecisionDepth() == 0 {
		t.Fatalf("degenerate stats: %s", c)
	}
}
