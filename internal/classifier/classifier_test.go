package classifier

import (
	"math/rand"
	"testing"

	"manorm/internal/mat"
)

// gwlbUniversal builds a parametric universal gateway & load-balancer
// match table: N services × M backends (matches only; the classifier layer
// never sees actions).
func gwlbUniversal(n, m int) *mat.Table {
	t := mat.New("uni", mat.Schema{
		mat.F("ip_src", 32), mat.F("ip_dst", 32), mat.F("tcp_dst", 16), mat.A("out", 16),
	})
	bits := uint8(0)
	for 1<<bits < m {
		bits++
	}
	for s := 0; s < n; s++ {
		for b := 0; b < m; b++ {
			src := mat.Prefix(uint64(b)<<(32-bits), bits, 32)
			if bits == 0 {
				src = mat.Any()
			}
			t.Add(src, mat.Exact(uint64(0xC0000200+s), 32), mat.Exact(uint64(1000+s), 16), mat.Exact(uint64(s*m+b+1), 16))
		}
	}
	return t
}

func exactTable(n int) *mat.Table {
	t := mat.New("exact", mat.Schema{mat.F("ip_dst", 32), mat.F("tcp_dst", 16), mat.A("out", 16)})
	for i := 0; i < n; i++ {
		t.Add(mat.Exact(uint64(0xC0000200+i), 32), mat.Exact(uint64(1000+i), 16), mat.Exact(uint64(i), 16))
	}
	return t
}

func lpmTable() *mat.Table {
	t := mat.New("lpm", mat.Schema{mat.F("ip_dst", 32), mat.A("out", 16)})
	t.Add(mat.IPv4Prefix("10.0.0.0", 8), mat.Exact(1, 16))
	t.Add(mat.IPv4Prefix("10.1.0.0", 16), mat.Exact(2, 16))
	t.Add(mat.IPv4Prefix("10.1.2.0", 24), mat.Exact(3, 16))
	t.Add(mat.IPv4Prefix("192.168.0.0", 16), mat.Exact(4, 16))
	t.Add(mat.Any(), mat.Exact(5, 16))
	return t
}

func TestShape(t *testing.T) {
	cases := []struct {
		tab  *mat.Table
		want string
	}{
		{exactTable(4), "exact"},
		{lpmTable(), "lpm"},
		{gwlbUniversal(4, 4), "ternary"},
		{gwlbUniversal(4, 1), "exact"}, // M=1: ip_src all-wildcard
	}
	for i, tc := range cases {
		if got := Shape(tc.tab); got != tc.want {
			t.Errorf("case %d: Shape = %q, want %q", i, got, tc.want)
		}
	}
}

func TestAutoSelectsTemplate(t *testing.T) {
	cases := []struct {
		tab  *mat.Table
		want string
	}{
		{exactTable(4), "exact"},
		{lpmTable(), "lpm"},
		{gwlbUniversal(4, 4), "ternary"},
	}
	for i, tc := range cases {
		c, err := Compile(tc.tab, Auto)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if c.Template() != tc.want {
			t.Errorf("case %d: Auto chose %q, want %q", i, c.Template(), tc.want)
		}
	}
}

func TestExactLookup(t *testing.T) {
	tab := exactTable(16)
	c, err := NewExact(tab)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		key := []uint64{uint64(0xC0000200 + i), uint64(1000 + i)}
		if got := c.Lookup(key); got != i {
			t.Errorf("Lookup(%v) = %d, want %d", key, got, i)
		}
	}
	if got := c.Lookup([]uint64{0xC0000200, 9999}); got != -1 {
		t.Errorf("miss returned %d", got)
	}
}

func TestExactMaskedColumn(t *testing.T) {
	// A column that is wildcard in every row is masked out of the key.
	tab := mat.New("e", mat.Schema{mat.F("in_port", 8), mat.F("dst", 16), mat.A("o", 8)})
	tab.Add(mat.Any(), mat.Exact(1, 16), mat.Exact(1, 8))
	tab.Add(mat.Any(), mat.Exact(2, 16), mat.Exact(2, 8))
	c, err := NewExact(tab)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Lookup([]uint64{77, 2}); got != 1 {
		t.Errorf("masked-column lookup = %d, want 1", got)
	}
}

func TestExactRejectsPrefixAndMixed(t *testing.T) {
	if _, err := NewExact(lpmTable()); err == nil {
		t.Errorf("prefix table compiled to exact")
	}
	mixed := mat.New("m", mat.Schema{mat.F("a", 8), mat.A("o", 8)})
	mixed.Add(mat.Exact(1, 8), mat.Exact(1, 8))
	mixed.Add(mat.Any(), mat.Exact(2, 8))
	if _, err := NewExact(mixed); err == nil {
		t.Errorf("mixed exact/wildcard column compiled to exact")
	}
}

func TestLPMLookup(t *testing.T) {
	c, err := NewLPM(lpmTable())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		ip   uint64
		want int
	}{
		{0x0A000001, 0}, // 10.0.0.1 -> /8
		{0x0A010001, 1}, // 10.1.0.1 -> /16
		{0x0A010201, 2}, // 10.1.2.1 -> /24
		{0xC0A80101, 3}, // 192.168.1.1 -> /16
		{0x08080808, 4}, // default
	}
	for _, tc := range cases {
		if got := c.Lookup([]uint64{tc.ip}); got != tc.want {
			t.Errorf("Lookup(%#x) = %d, want %d", tc.ip, got, tc.want)
		}
	}
}

func TestLPMRejectsMultiColumn(t *testing.T) {
	if _, err := NewLPM(gwlbUniversal(2, 2)); err == nil {
		t.Errorf("multi-column table compiled to LPM")
	}
}

func TestLPMDuplicatePrefixRejected(t *testing.T) {
	tab := mat.New("d", mat.Schema{mat.F("ip", 32), mat.A("o", 8)})
	tab.Add(mat.IPv4Prefix("10.0.0.0", 8), mat.Exact(1, 8))
	tab.Add(mat.IPv4Prefix("10.0.0.0", 8), mat.Exact(2, 8))
	if _, err := NewLPM(tab); err == nil {
		t.Errorf("duplicate prefix accepted")
	}
	tab2 := mat.New("d2", mat.Schema{mat.F("ip", 32), mat.A("o", 8)})
	tab2.Add(mat.Any(), mat.Exact(1, 8))
	tab2.Add(mat.Any(), mat.Exact(2, 8))
	if _, err := NewLPM(tab2); err == nil {
		t.Errorf("duplicate default accepted")
	}
}

func TestTernaryPriority(t *testing.T) {
	// More-specific entries win regardless of insertion order.
	tab := mat.New("t", mat.Schema{mat.F("ip", 32), mat.F("port", 16), mat.A("o", 8)})
	tab.Add(mat.IPv4Prefix("10.0.0.0", 8), mat.Any(), mat.Exact(1, 8))
	tab.Add(mat.IPv4Prefix("10.1.0.0", 16), mat.Exact(80, 16), mat.Exact(2, 8))
	c := NewTernary(tab)
	if got := c.Lookup([]uint64{0x0A010001, 80}); got != 1 {
		t.Errorf("specific entry lost: %d", got)
	}
	if got := c.Lookup([]uint64{0x0A010001, 443}); got != 0 {
		t.Errorf("fallback entry lost: %d", got)
	}
	if got := c.Lookup([]uint64{0x0B000000, 80}); got != -1 {
		t.Errorf("miss returned %d", got)
	}
}

// referenceAgreement verifies a classifier against the ternary reference on
// a key set.
func referenceAgreement(t *testing.T, tab *mat.Table, c Classifier, keys [][]uint64) {
	t.Helper()
	ref := NewTernary(tab)
	for _, k := range keys {
		want := ref.Lookup(k)
		got := c.Lookup(k)
		if got != want {
			t.Fatalf("%s disagrees with ternary on %v: got %d, want %d", c.Template(), k, got, want)
		}
	}
}

// keysFor generates probe keys around a table's patterns plus random ones.
func keysFor(tab *mat.Table, rng *rand.Rand, n int) [][]uint64 {
	fields := tab.Schema.Fields()
	var keys [][]uint64
	for _, e := range tab.Entries {
		k := make([]uint64, len(fields))
		k2 := make([]uint64, len(fields))
		for i, f := range fields {
			c := e[f]
			k[i] = c.Bits
			w := tab.Schema[f].Width
			k2[i] = c.Bits | (uint64(1)<<(w-c.PLen))/2 // poke host bits when plen < width
			if c.PLen == w {
				k2[i] = c.Bits
			}
		}
		keys = append(keys, k, k2)
	}
	for i := 0; i < n; i++ {
		k := make([]uint64, len(fields))
		for j, f := range fields {
			w := tab.Schema[f].Width
			k[j] = rng.Uint64() & ((uint64(1) << w) - 1)
		}
		keys = append(keys, k)
	}
	return keys
}

func TestConformanceAllTemplates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tables := []*mat.Table{exactTable(32), lpmTable(), gwlbUniversal(8, 8), gwlbUniversal(20, 8)}
	for _, tab := range tables {
		keys := keysFor(tab, rng, 500)
		// Tuple space handles every shape.
		referenceAgreement(t, tab, NewTupleSpace(tab), keys)
		// Auto handles every shape.
		c, err := Compile(tab, Auto)
		if err != nil {
			t.Fatalf("%s: %v", tab.Name, err)
		}
		referenceAgreement(t, tab, c, keys)
	}
	// Shape-specific templates on their shapes.
	referenceAgreement(t, exactTable(32), mustCompile(t, exactTable(32), ForceExact), keysFor(exactTable(32), rng, 200))
	referenceAgreement(t, lpmTable(), mustCompile(t, lpmTable(), ForceLPM), keysFor(lpmTable(), rng, 200))
}

func mustCompile(t *testing.T, tab *mat.Table, tmpl Template) Classifier {
	t.Helper()
	c, err := Compile(tab, tmpl)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConformanceRandomLPMTables(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		tab := mat.New("r", mat.Schema{mat.F("ip", 32), mat.A("o", 16)})
		seen := map[mat.Cell]bool{}
		n := 1 + rng.Intn(30)
		for i := 0; i < n; i++ {
			plen := uint8(rng.Intn(33))
			c := mat.Prefix(rng.Uint64(), plen, 32)
			if seen[c] {
				continue
			}
			seen[c] = true
			tab.Add(c, mat.Exact(uint64(i), 16))
		}
		lpm, err := NewLPM(tab)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		keys := keysFor(tab, rng, 300)
		referenceAgreement(t, tab, lpm, keys)
		referenceAgreement(t, tab, NewTupleSpace(tab), keys)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile(exactTable(2), Template(99)); err == nil {
		t.Errorf("unknown template accepted")
	}
	if _, err := Compile(gwlbUniversal(2, 2), ForceExact); err == nil {
		t.Errorf("ternary-shaped table force-compiled to exact")
	}
	if _, err := Compile(gwlbUniversal(2, 2), ForceLPM); err == nil {
		t.Errorf("ternary-shaped table force-compiled to lpm")
	}
}

func TestTemplateString(t *testing.T) {
	for tmpl, want := range map[Template]string{
		Auto: "auto", ForceExact: "exact", ForceLPM: "lpm", ForceTernary: "ternary", ForceTupleSpace: "tss",
	} {
		if tmpl.String() != want {
			t.Errorf("Template(%d) = %q, want %q", int(tmpl), tmpl.String(), want)
		}
	}
}

// Benchmarks: the A3 ablation — the raw cost of each template on the
// shapes normalization produces. The ternary scan on the universal table
// versus exact+LPM on the normalized stages is the ESwitch mechanism.

func benchKeys(tab *mat.Table, n int) [][]uint64 {
	rng := rand.New(rand.NewSource(1))
	fields := tab.Schema.Fields()
	keys := make([][]uint64, n)
	for i := range keys {
		e := tab.Entries[rng.Intn(len(tab.Entries))]
		k := make([]uint64, len(fields))
		for j, f := range fields {
			k[j] = e[f].Bits
		}
		keys[i] = k
	}
	return keys
}

func benchClassifier(b *testing.B, tab *mat.Table, tmpl Template) {
	c, err := Compile(tab, tmpl)
	if err != nil {
		b.Fatal(err)
	}
	keys := benchKeys(tab, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Lookup(keys[i&1023]) < 0 {
			b.Fatal("unexpected miss")
		}
	}
}

func BenchmarkClassifierExact160(b *testing.B) { benchClassifier(b, exactTable(160), ForceExact) }
func BenchmarkClassifierLPM(b *testing.B)      { benchClassifier(b, lpmTable(), ForceLPM) }
func BenchmarkClassifierTernary160(b *testing.B) {
	benchClassifier(b, gwlbUniversal(20, 8), ForceTernary)
}
func BenchmarkClassifierTSS160(b *testing.B) {
	benchClassifier(b, gwlbUniversal(20, 8), ForceTupleSpace)
}
