package classifier

import (
	"math/rand"
	"sort"
	"testing"

	"manorm/internal/mat"
)

// seedTernary replicates the pre-compiled ternary scan this repository
// shipped with: a priority-ordered linear scan calling mat.Cell.Matches on
// every cell, recomputing the prefix mask per cell per lookup. It is kept
// here (test-only) as the baseline BenchmarkTernaryLookup compares the
// compiled mask/value scan against.
type seedTernary struct {
	cols []column
	pats []pattern
}

func newSeedTernary(t *mat.Table) *seedTernary {
	cols, pats := extractPatterns(t)
	sort.SliceStable(pats, func(i, j int) bool { return pats[i].prio > pats[j].prio })
	return &seedTernary{cols: cols, pats: pats}
}

func (c *seedTernary) Lookup(key []uint64) int {
	for pi := range c.pats {
		p := &c.pats[pi]
		hit := true
		for i := range p.cells {
			if !p.cells[i].Matches(key[i], c.cols[i].width) {
				hit = false
				break
			}
		}
		if hit {
			return p.idx
		}
	}
	return -1
}

// TestCompiledTernaryMatchesSeed pins the compiled scan to the seed
// semantics on the paper's table shapes, including miss keys.
func TestCompiledTernaryMatchesSeed(t *testing.T) {
	for _, tab := range []*mat.Table{gwlbUniversal(20, 8), gwlbUniversal(4, 1), lpmTable(), exactTable(16)} {
		seed := newSeedTernary(tab)
		compiled := NewTernary(tab)
		keys := keysFor(tab, rand.New(rand.NewSource(7)), 2000)
		for _, k := range keys {
			if got, want := compiled.Lookup(k), seed.Lookup(k); got != want {
				t.Fatalf("%s: compiled %d != seed %d on %v", tab.Name, got, want, k)
			}
		}
	}
}

// lookupBench times one classifier implementation on the paper's 160-entry
// universal gateway & load-balancer table (the Table 1 hot path).
func lookupBench(b *testing.B, c interface{ Lookup([]uint64) int }, tab *mat.Table) {
	keys := benchKeys(tab, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Lookup(keys[i&1023]) < 0 {
			b.Fatal("unexpected miss")
		}
	}
}

// BenchmarkTernaryLookup compares the compiled mask/value ternary scan
// against the seed per-Cell implementation on the same table and keys:
//
//	go test -bench BenchmarkTernaryLookup ./internal/classifier
//
// The compiled variant must be >= 1.5x faster (see EXPERIMENTS.md).
func BenchmarkTernaryLookup(b *testing.B) {
	tab := gwlbUniversal(20, 8)
	b.Run("compiled", func(b *testing.B) { lookupBench(b, NewTernary(tab), tab) })
	b.Run("seed", func(b *testing.B) { lookupBench(b, newSeedTernary(tab), tab) })
}

// BenchmarkExactLookup times the hash template on a 160-entry exact table
// (the shape the normalized service stage compiles to).
func BenchmarkExactLookup(b *testing.B) {
	tab := exactTable(160)
	c, err := NewExact(tab)
	if err != nil {
		b.Fatal(err)
	}
	lookupBench(b, c, tab)
}

// BenchmarkTupleSpaceLookup times tuple space search on the universal
// table (the OVS/Lagopus slow-path template).
func BenchmarkTupleSpaceLookup(b *testing.B) {
	tab := gwlbUniversal(20, 8)
	lookupBench(b, NewTupleSpace(tab), tab)
}

// BenchmarkLPMLookup times the trie on the backend-prefix shape.
func BenchmarkLPMLookup(b *testing.B) {
	tab := lpmTable()
	c, err := NewLPM(tab)
	if err != nil {
		b.Fatal(err)
	}
	lookupBench(b, c, tab)
}
