package classifier

import (
	"fmt"

	"manorm/internal/mat"
)

// FDD is the fused-pipeline template: a field-ordered decision structure
// in the style of the NetKAT compiler's forwarding decision diagrams.
// Internal nodes dispatch on one key column — a dense child table for
// exact-valued columns spanning a compact range (a hash map otherwise), a
// single compare when only one value occurs, a bit-trie for prefix
// columns — and leaves either name the answering entry directly or
// fall back to a short first-match scan over the same precomputed
// mask/value rows the ternary template uses.
//
// Unlike every other template, FDD resolves ties by *entry order*, not by
// specificity: the rule lists produced by pipeline fusion (internal/fdd)
// encode the source pipeline's semantics positionally, and re-sorting them
// by prefix length would be unsound (a fused miss-continuation rule must
// lose to every earlier rule it overlaps, regardless of how many bits
// either constrains).
type FDD struct {
	root  *fddNode
	nCols int

	nodes  int // internal decision nodes (exact, test, trie, scan)
	leaves int // direct-answer leaves
	depth  int // longest root-to-leaf decision path
}

type fddKind uint8

const (
	fddLeaf fddKind = iota
	fddTest
	fddExact
	fddDense
	fddTrie
	fddLpm
	fddScan
	fddScan1
)

// fddLpmBits caps the longest prefix a column may use before its dispatch
// falls back from a precomputed 2^plen expansion table (one shift+load
// resolves the longest match) to the pointer-chasing bit-trie.
const fddLpmBits = 12

// fddDenseMax caps the value range a compact exact column may span before
// the dispatch falls back to a hash map: a dense child table indexes in
// two instructions where the map pays a hash and a probe, but an outlier
// value range would waste unbounded memory on absent slots.
const fddDenseMax = 4096

type fddNode struct {
	kind fddKind
	col  int // key position dispatched on (test, exact, trie)

	entry int32 // leaf answer (-1: miss)

	testVal  uint64              // test: single exact value
	hit      *fddNode            // test: value matched
	dflt     *fddNode            // test/exact/dense: no value matched
	children map[uint64]*fddNode // exact: value -> subtree

	base  uint64     // dense: lowest dispatched value
	dense []*fddNode // dense: subtree per value in [base, base+len); absent values hold dflt

	width uint8        // trie/lpm: column bit width
	trie  *fddTrieNode // trie: root (empty prefix)

	shift uint8      // lpm: width minus the expansion's prefix depth
	lpm   []*fddNode // lpm: longest-match sub-decision per top-bits slot

	// scan: first-match rows over the remaining active columns, same
	// row-major mask/value layout as Ternary.
	nCols  int
	active []int
	masks  []uint64
	vals   []uint64
	idx    []int32
}

// fddTrieNode is one prefix-trie vertex; sub decides keys whose bit walk
// ends here (every strictly longer inserted prefix diverges from the key).
type fddTrieNode struct {
	child [2]*fddTrieNode
	sub   *fddNode
}

// fddRule is one ordered rule during construction.
type fddRule struct {
	cells []mat.Cell
	idx   int32
}

// fddScanMax bounds the rule count below which a first-match scan leaf is
// cheaper than further dispatch nodes.
const fddScanMax = 3

// NewFDD builds the decision structure over the table's match columns with
// first-match-in-entry-order semantics.
func NewFDD(t *mat.Table) (*FDD, error) {
	cols, pats := extractPatterns(t)
	rules := make([]fddRule, len(pats))
	for i, p := range pats {
		rules[i] = fddRule{cells: p.cells, idx: int32(p.idx)}
	}
	c := &FDD{nCols: len(cols)}
	done := make([]bool, len(cols))
	c.root = c.build(cols, rules, done, 1)
	return c, nil
}

// build constructs the decision node for an ordered rule list; done marks
// columns already resolved by ancestor dispatches.
func (c *FDD) build(cols []column, rules []fddRule, done []bool, depth int) *fddNode {
	if depth > c.depth {
		c.depth = depth
	}
	if len(rules) == 0 {
		return c.leaf(-1)
	}
	// First-match semantics: if the earliest rule is unconstrained on every
	// remaining column it shadows everything after it.
	if ruleResolved(rules[0], cols, done) {
		return c.leaf(rules[0].idx)
	}

	col := c.pickColumn(cols, rules, done)
	if col < 0 || len(rules) <= fddScanMax {
		return c.scanLeaf(cols, rules, done)
	}

	childDone := make([]bool, len(done))
	copy(childDone, done)
	childDone[col] = true

	if exactDispatchable(rules, col, cols[col].width) {
		return c.buildExact(cols, rules, childDone, col, depth)
	}
	return c.buildTrie(cols, rules, childDone, col, depth)
}

// pickColumn chooses the most discriminating remaining column: the one
// with the largest number of distinct constraining patterns. Returns -1
// when every remaining column is wildcarded by every rule.
func (c *FDD) pickColumn(cols []column, rules []fddRule, done []bool) int {
	best, bestScore := -1, 0
	for i := range cols {
		if done[i] {
			continue
		}
		seen := make(map[mat.Cell]struct{})
		for _, r := range rules {
			if !r.cells[i].IsAny() {
				seen[r.cells[i].Canonical(cols[i].width)] = struct{}{}
			}
		}
		if len(seen) > bestScore {
			best, bestScore = i, len(seen)
		}
	}
	return best
}

// exactDispatchable reports whether every constraint on the column is a
// full-width exact value (hash-dispatchable without residue).
func exactDispatchable(rules []fddRule, col int, width uint8) bool {
	for _, r := range rules {
		cell := r.cells[col]
		if !cell.IsAny() && !cell.IsExact(width) {
			return false
		}
	}
	return true
}

// buildExact dispatches on an exact column: one subtree per occurring
// value (wildcard rules replicate into each, preserving order) plus a
// default subtree of the wildcard rules alone.
func (c *FDD) buildExact(cols []column, rules []fddRule, done []bool, col int, depth int) *fddNode {
	byVal := make(map[uint64][]fddRule)
	var anyRules []fddRule
	for _, r := range rules {
		if r.cells[col].IsAny() {
			anyRules = append(anyRules, r)
			continue
		}
		v := r.cells[col].Bits
		byVal[v] = append(byVal[v], r)
	}
	// Merge wildcard rules into each value bucket in original order.
	merge := func(v uint64) []fddRule {
		out := make([]fddRule, 0, len(byVal[v])+len(anyRules))
		for _, r := range rules {
			if r.cells[col].IsAny() || (r.cells[col].IsExact(cols[col].width) && r.cells[col].Bits == v) {
				out = append(out, r)
			}
		}
		return out
	}
	if len(byVal) == 1 {
		n := &fddNode{kind: fddTest, col: col}
		for v := range byVal {
			n.testVal = v
			n.hit = c.build(cols, merge(v), done, depth+1)
		}
		n.dflt = c.build(cols, anyRules, done, depth+1)
		c.nodes++
		return n
	}
	// Compact value ranges (contiguous VIP blocks, small port pools) index
	// a dense child table instead of hashing.
	lo, hi := ^uint64(0), uint64(0)
	for v := range byVal {
		lo, hi = min(lo, v), max(hi, v)
	}
	if span := hi - lo + 1; span <= fddDenseMax {
		n := &fddNode{kind: fddDense, col: col, base: lo, dense: make([]*fddNode, span)}
		n.dflt = c.build(cols, anyRules, done, depth+1)
		for i := range n.dense {
			n.dense[i] = n.dflt
		}
		for v := range byVal {
			n.dense[v-lo] = c.build(cols, merge(v), done, depth+1)
		}
		c.nodes++
		return n
	}
	n := &fddNode{kind: fddExact, col: col, children: make(map[uint64]*fddNode, len(byVal))}
	for v := range byVal {
		n.children[v] = c.build(cols, merge(v), done, depth+1)
	}
	n.dflt = c.build(cols, anyRules, done, depth+1)
	c.nodes++
	return n
}

// buildTrie dispatches on a prefix column: every distinct prefix becomes a
// trie path, and each trie vertex holds the decision for keys whose walk
// ends there — built from the rules whose prefix covers the vertex, in
// original order, with the column resolved.
func (c *FDD) buildTrie(cols []column, rules []fddRule, done []bool, col int, depth int) *fddNode {
	width := cols[col].width
	root := &fddTrieNode{}
	var maxPlen uint8
	for _, r := range rules {
		cell := r.cells[col]
		if cell.IsAny() {
			continue
		}
		if cell.PLen > maxPlen {
			maxPlen = cell.PLen
		}
		tn := root
		for d := uint8(0); d < cell.PLen; d++ {
			b := (cell.Bits >> (width - 1 - d)) & 1
			if tn.child[b] == nil {
				tn.child[b] = &fddTrieNode{}
			}
			tn = tn.child[b]
		}
	}
	// Populate each vertex's decision from its covering rules.
	var fill func(tn *fddTrieNode, prefix uint64, d uint8)
	fill = func(tn *fddTrieNode, prefix uint64, d uint8) {
		var covering []fddRule
		for _, r := range rules {
			cell := r.cells[col]
			if cell.IsAny() || (cell.PLen <= d && cell.Matches(prefix, width)) {
				covering = append(covering, r)
			}
		}
		tn.sub = c.build(cols, covering, done, depth+1)
		for b := uint64(0); b < 2; b++ {
			if ch := tn.child[b]; ch != nil {
				fill(ch, prefix|b<<(width-1-d), d+1)
			}
		}
	}
	fill(root, 0, 0)
	c.nodes++

	// Shallow prefix sets expand into a 2^maxPlen longest-match table:
	// one shift and one load replace the per-bit pointer walk.
	if maxPlen <= fddLpmBits {
		n := &fddNode{kind: fddLpm, col: col, width: width, shift: width - maxPlen,
			lpm: make([]*fddNode, 1<<maxPlen)}
		for s := range n.lpm {
			tn := root
			for d := uint8(0); d < maxPlen; d++ {
				next := tn.child[(uint64(s)>>(maxPlen-1-d))&1]
				if next == nil {
					break
				}
				tn = next
			}
			n.lpm[s] = tn.sub
		}
		return n
	}
	return &fddNode{kind: fddTrie, col: col, width: width, trie: root}
}

// scanLeaf compiles the remaining rules into first-match mask/value rows
// (the ternary row machinery, minus the priority sort).
func (c *FDD) scanLeaf(cols []column, rules []fddRule, done []bool) *fddNode {
	var active []int
	for i := range cols {
		if done[i] {
			continue
		}
		for _, r := range rules {
			if !r.cells[i].IsAny() {
				active = append(active, i)
				break
			}
		}
	}
	if len(active) == 0 {
		return c.leaf(rules[0].idx)
	}
	n := &fddNode{
		kind:   fddScan,
		nCols:  len(active),
		active: active,
		masks:  make([]uint64, 0, len(rules)*len(active)),
		vals:   make([]uint64, 0, len(rules)*len(active)),
		idx:    make([]int32, len(rules)),
	}
	for r, rule := range rules {
		n.idx[r] = rule.idx
		for _, i := range active {
			m := prefixMask64(rule.cells[i].PLen, cols[i].width)
			n.masks = append(n.masks, m)
			n.vals = append(n.vals, rule.cells[i].Bits&m)
		}
	}
	// The one-column case loads the key once and scans flat mask/value
	// rows with no per-cell index indirection.
	if len(active) == 1 {
		n.kind = fddScan1
		n.col = active[0]
	}
	c.nodes++
	return n
}

func (c *FDD) leaf(entry int32) *fddNode {
	c.leaves++
	return &fddNode{kind: fddLeaf, entry: entry}
}

// ruleResolved reports whether a rule constrains none of the remaining
// columns (it matches every key reaching this node).
func ruleResolved(r fddRule, cols []column, done []bool) bool {
	for i := range cols {
		if !done[i] && !r.cells[i].IsAny() {
			return false
		}
	}
	return true
}

// Lookup walks the decision structure and returns the first matching
// entry in the table's entry order, or -1.
func (c *FDD) Lookup(key []uint64) int {
	n := c.root
	for {
		switch n.kind {
		case fddLeaf:
			return int(n.entry)
		case fddTest:
			if key[n.col] == n.testVal {
				n = n.hit
			} else {
				n = n.dflt
			}
		case fddExact:
			if ch, ok := n.children[key[n.col]]; ok {
				n = ch
			} else {
				n = n.dflt
			}
		case fddDense:
			if i := key[n.col] - n.base; i < uint64(len(n.dense)) {
				n = n.dense[i]
			} else {
				n = n.dflt
			}
		case fddLpm:
			n = n.lpm[key[n.col]>>n.shift]
		case fddTrie:
			tn := n.trie
			v := key[n.col]
			for d := n.width; d > 0; d-- {
				next := tn.child[(v>>(d-1))&1]
				if next == nil {
					break
				}
				tn = next
			}
			n = tn.sub
		case fddScan1:
			v := key[n.col]
			for r := range n.idx {
				if v&n.masks[r] == n.vals[r] {
					return int(n.idx[r])
				}
			}
			return -1
		default: // fddScan
			base := 0
			for r := range n.idx {
				hit := true
				for i := 0; i < n.nCols; i++ {
					if key[n.active[i]]&n.masks[base+i] != n.vals[base+i] {
						hit = false
						break
					}
				}
				if hit {
					return int(n.idx[r])
				}
				base += n.nCols
			}
			return -1
		}
	}
}

// Template returns "fdd".
func (c *FDD) Template() string { return "fdd" }

// Nodes returns the internal decision-node count.
func (c *FDD) Nodes() int { return c.nodes }

// Leaves returns the direct-answer leaf count.
func (c *FDD) Leaves() int { return c.leaves }

// DecisionDepth returns the longest root-to-leaf dispatch path.
func (c *FDD) DecisionDepth() int { return c.depth }

// String summarizes the structure for stats output.
func (c *FDD) String() string {
	return fmt.Sprintf("fdd{nodes=%d leaves=%d depth=%d}", c.nodes, c.leaves, c.depth)
}
