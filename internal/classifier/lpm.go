package classifier

import (
	"fmt"

	"manorm/internal/mat"
)

// LPM is the longest-prefix-match template: a path-compressed binary trie
// over a single match column. Applicable when the table has exactly one
// column carrying prefixes (all other columns, if any, fully wildcarded) —
// the shape of a routing table or a normalized per-tenant load-balancer
// stage.
type LPM struct {
	cols  []column
	col   int // the prefix column
	width uint8
	root  *lpmNode
	// dflt is the entry with a zero-length prefix (matches everything),
	// -1 if absent.
	dflt int
}

// lpmNode is a binary trie node. Children index by the next bit below the
// node's depth.
type lpmNode struct {
	child [2]*lpmNode
	// entry is the entry index terminating at this node, -1 if none.
	entry int
}

// NewLPM compiles the table to the LPM template. It fails if more than one
// column is non-wildcard, or if the prefix column's patterns repeat.
func NewLPM(t *mat.Table) (*LPM, error) {
	cols, pats := extractPatterns(t)
	col := -1
	for i := range cols {
		for _, p := range pats {
			if !p.cells[i].IsAny() {
				if col >= 0 && col != i {
					return nil, fmt.Errorf("classifier: lpm template needs a single active column; %d and %d are both constrained", col, i)
				}
				col = i
			}
		}
	}
	if col < 0 {
		col = 0 // all-wildcard table: any column works
	}
	c := &LPM{cols: cols, col: col, width: cols[col].width, root: &lpmNode{entry: -1}, dflt: -1}
	for _, p := range pats {
		cell := p.cells[col]
		if cell.IsAny() {
			if c.dflt >= 0 {
				return nil, fmt.Errorf("classifier: duplicate default entry")
			}
			c.dflt = p.idx
			continue
		}
		if err := c.insert(cell, p.idx); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// insert walks the trie bit by bit (top-down from the MSB).
func (c *LPM) insert(cell mat.Cell, idx int) error {
	n := c.root
	for d := uint8(0); d < cell.PLen; d++ {
		bit := (cell.Bits >> (c.width - 1 - d)) & 1
		if n.child[bit] == nil {
			n.child[bit] = &lpmNode{entry: -1}
		}
		n = n.child[bit]
	}
	if n.entry >= 0 {
		return fmt.Errorf("classifier: duplicate prefix %s", cell.Format(c.width))
	}
	n.entry = idx
	return nil
}

// Lookup walks the trie, remembering the deepest terminating node.
func (c *LPM) Lookup(key []uint64) int {
	v := key[c.col]
	best := c.dflt
	n := c.root
	if n.entry >= 0 {
		best = n.entry
	}
	for d := uint8(0); d < c.width; d++ {
		bit := (v >> (c.width - 1 - d)) & 1
		n = n.child[bit]
		if n == nil {
			break
		}
		if n.entry >= 0 {
			best = n.entry
		}
	}
	return best
}

// Template returns "lpm".
func (c *LPM) Template() string { return "lpm" }
