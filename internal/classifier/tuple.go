package classifier

import (
	"manorm/internal/mat"
)

// TupleSpace is the Open vSwitch-style tuple space search template: entries
// are grouped by their mask tuple (the per-column prefix-length vector) and
// each group is an exact hash over the masked key. A lookup probes every
// tuple and keeps the highest-priority hit. Insertion-friendly and
// shape-agnostic; lookup cost grows with the number of distinct tuples.
type TupleSpace struct {
	cols   []column
	tuples []tuple
}

type tuple struct {
	plens   []uint8
	prio    int // total prefix bits — all members share it
	buckets map[uint64][]exactEntry
}

// NewTupleSpace compiles the table to tuple space search. Any table shape
// is accepted.
func NewTupleSpace(t *mat.Table) *TupleSpace {
	cols, pats := extractPatterns(t)
	c := &TupleSpace{cols: cols}
	index := make(map[string]int)
	for _, p := range pats {
		sig := make([]byte, len(p.cells))
		plens := make([]uint8, len(p.cells))
		for i, cell := range p.cells {
			sig[i] = byte(cell.PLen)
			plens[i] = cell.PLen
		}
		ti, ok := index[string(sig)]
		if !ok {
			ti = len(c.tuples)
			index[string(sig)] = ti
			c.tuples = append(c.tuples, tuple{plens: plens, prio: p.prio, buckets: make(map[uint64][]exactEntry)})
		}
		masked := make([]uint64, len(p.cells))
		for i, cell := range p.cells {
			masked[i] = cell.Bits // already canonical (host bits cleared)
		}
		h := hashKey(masked)
		tu := &c.tuples[ti]
		tu.buckets[h] = append(tu.buckets[h], exactEntry{key: masked, idx: p.idx})
	}
	return c
}

// maskTo keeps the top plen bits of a width-bit value.
func maskTo(v uint64, plen, width uint8) uint64 {
	if plen == 0 {
		return 0
	}
	if plen >= width {
		return v
	}
	return v &^ ((uint64(1) << (width - plen)) - 1)
}

// Lookup probes each tuple's hash with the appropriately masked key.
func (c *TupleSpace) Lookup(key []uint64) int {
	best, bestPrio := -1, -1
	// Stack scratch keeps Lookup allocation-free and concurrency-safe for
	// the match widths real tables use.
	var scratch [16]uint64
	var masked []uint64
	if len(c.cols) <= len(scratch) {
		masked = scratch[:len(c.cols)]
	} else {
		masked = make([]uint64, len(c.cols))
	}
	for ti := range c.tuples {
		tu := &c.tuples[ti]
		if tu.prio <= bestPrio {
			continue
		}
		for i := range c.cols {
			masked[i] = maskTo(key[i], tu.plens[i], c.cols[i].width)
		}
		bucket := tu.buckets[hashKey(masked)]
		for bi := range bucket {
			e := &bucket[bi]
			ok := true
			for j := range e.key {
				if e.key[j] != masked[j] {
					ok = false
					break
				}
			}
			if ok {
				best, bestPrio = e.idx, tu.prio
				break
			}
		}
	}
	return best
}

// Template returns "tss".
func (c *TupleSpace) Template() string { return "tss" }
