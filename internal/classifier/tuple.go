package classifier

import (
	"sort"

	"manorm/internal/mat"
)

// TupleSpace is the Open vSwitch-style tuple space search template: entries
// are grouped by their mask tuple (the per-column prefix-length vector) and
// each group is an exact hash over the masked key. Tuples are kept sorted
// by descending priority, so a lookup probes tuples in priority order and
// stops at the first hit. Insertion-friendly and shape-agnostic; lookup
// cost grows with the number of distinct tuples.
type TupleSpace struct {
	cols   []column
	tuples []tuple
}

type tuple struct {
	plens []uint8
	// masks holds the precomputed per-column prefix masks for plens.
	masks   []uint64
	prio    int // total prefix bits — all members share it
	order   int // insertion rank, for stable priority ties
	buckets map[uint64][]exactEntry
}

// NewTupleSpace compiles the table to tuple space search. Any table shape
// is accepted.
func NewTupleSpace(t *mat.Table) *TupleSpace {
	cols, pats := extractPatterns(t)
	c := &TupleSpace{cols: cols}
	index := make(map[string]int)
	for _, p := range pats {
		sig := make([]byte, len(p.cells))
		plens := make([]uint8, len(p.cells))
		for i, cell := range p.cells {
			sig[i] = byte(cell.PLen)
			plens[i] = cell.PLen
		}
		ti, ok := index[string(sig)]
		if !ok {
			ti = len(c.tuples)
			index[string(sig)] = ti
			masks := make([]uint64, len(plens))
			for i, pl := range plens {
				masks[i] = prefixMask64(pl, cols[i].width)
			}
			c.tuples = append(c.tuples, tuple{plens: plens, masks: masks, prio: p.prio, order: ti, buckets: make(map[uint64][]exactEntry)})
		}
		masked := make([]uint64, len(p.cells))
		for i, cell := range p.cells {
			masked[i] = cell.Bits // already canonical (host bits cleared)
		}
		h := hashKey(masked)
		tu := &c.tuples[ti]
		tu.buckets[h] = append(tu.buckets[h], exactEntry{key: masked, idx: p.idx})
	}
	// Probe order: descending priority, insertion order on ties — the same
	// resolution the unsorted keep-the-best scan produced.
	sort.SliceStable(c.tuples, func(i, j int) bool {
		if c.tuples[i].prio != c.tuples[j].prio {
			return c.tuples[i].prio > c.tuples[j].prio
		}
		return c.tuples[i].order < c.tuples[j].order
	})
	return c
}

// Lookup probes the tuples in descending priority order with the
// appropriately masked key and returns on the first hit.
func (c *TupleSpace) Lookup(key []uint64) int {
	// Stack scratch keeps Lookup allocation-free and concurrency-safe for
	// the match widths real tables use.
	var scratch [16]uint64
	var masked []uint64
	if len(c.cols) <= len(scratch) {
		masked = scratch[:len(c.cols)]
	} else {
		masked = make([]uint64, len(c.cols))
	}
	for ti := range c.tuples {
		tu := &c.tuples[ti]
		h := uint64(14695981039346656037)
		for i := range masked {
			m := key[i] & tu.masks[i]
			masked[i] = m
			h ^= m
			h *= 1099511628211
		}
		bucket := tu.buckets[h]
		for bi := range bucket {
			e := &bucket[bi]
			ok := true
			for j := range e.key {
				if e.key[j] != masked[j] {
					ok = false
					break
				}
			}
			if ok {
				return e.idx
			}
		}
	}
	return -1
}

// Template returns "tss".
func (c *TupleSpace) Template() string { return "tss" }
