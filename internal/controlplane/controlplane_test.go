package controlplane

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"manorm/internal/faultconn"
	"manorm/internal/mat"
	"manorm/internal/openflow"
	"manorm/internal/packet"
	"manorm/internal/switches"
	"manorm/internal/usecases"
)

func TestPlanSizesMatchPaperChurnClaims(t *testing.T) {
	// §2 controllability / §5 reactiveness: a service update touches M
	// entries in the universal representation and 1 in the normalized
	// ones ("8× greater control plane churn" for M=8).
	g := usecases.Generate(20, 8, 7)
	for _, tc := range []struct {
		rep  usecases.Representation
		port int // entries touched by a port change
		vip  int // entries touched by a VIP change
	}{
		{usecases.RepUniversal, 8, 8},
		{usecases.RepGoto, 1, 1},
		{usecases.RepMetadata, 1, 1},
		{usecases.RepRematch, 1, 9}, // rematch forfeits the VIP benefit
	} {
		pp, err := PlanPortChange(g, tc.rep, 3, 9999)
		if err != nil {
			t.Fatalf("%s: %v", tc.rep, err)
		}
		if pp.EntriesTouched != tc.port {
			t.Errorf("%s: port change touches %d entries, want %d", tc.rep, pp.EntriesTouched, tc.port)
		}
		if len(pp.Mods) != 2*tc.port {
			t.Errorf("%s: port change issues %d mods, want %d", tc.rep, len(pp.Mods), 2*tc.port)
		}
		pv, err := PlanVIPChange(g, tc.rep, 3, 0xC00002FF)
		if err != nil {
			t.Fatalf("%s: %v", tc.rep, err)
		}
		if pv.EntriesTouched != tc.vip {
			t.Errorf("%s: VIP change touches %d entries, want %d", tc.rep, pv.EntriesTouched, tc.vip)
		}
	}
}

func TestCounterPlacement(t *testing.T) {
	g := usecases.Generate(5, 8, 3)
	// Universal: 8 counters in stage 0 at the service's block.
	stage, entries, err := CounterPlacement(g, usecases.RepUniversal, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stage != 0 || len(entries) != 8 || entries[0] != 16 {
		t.Errorf("universal placement = stage %d, entries %v", stage, entries)
	}
	// Normalized: one counter at the service entry.
	for _, rep := range []usecases.Representation{usecases.RepGoto, usecases.RepMetadata, usecases.RepRematch} {
		stage, entries, err = CounterPlacement(g, rep, 2)
		if err != nil {
			t.Fatal(err)
		}
		if stage != 0 || len(entries) != 1 || entries[0] != 2 {
			t.Errorf("%s placement = stage %d, entries %v", rep, stage, entries)
		}
	}
	if _, _, err := CounterPlacement(g, usecases.RepUniversal, 99); err == nil {
		t.Errorf("bad service index accepted")
	}
}

// endToEnd wires controller -> openflow channel -> agent -> switch model.
func endToEnd(t *testing.T, g *usecases.GwLB, rep usecases.Representation, sw switches.Switch) (*Controller, switches.Switch) {
	t.Helper()
	p, err := g.Build(rep)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := openflow.NewAgent(sw, p)
	if err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	go agent.Serve(context.Background(), a) //nolint:errcheck — ends with the pipe
	client, err := openflow.NewClient(b)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return &Controller{Client: client, Rep: rep, Config: g}, sw
}

func TestPortChangeEndToEndAllReps(t *testing.T) {
	for _, rep := range []usecases.Representation{
		usecases.RepUniversal, usecases.RepGoto, usecases.RepMetadata, usecases.RepRematch,
	} {
		g := usecases.Generate(6, 4, 9)
		ctl, sw := endToEnd(t, g, rep, switches.NewESwitch())
		svc := g.Services[2]
		oldPort := svc.Port
		newPort := uint16(9999)

		touched, err := ctl.ChangeServicePort(context.Background(), 2, newPort)
		if err != nil {
			t.Fatalf("%s: %v", rep, err)
		}
		wantTouched := 1
		if rep == usecases.RepUniversal {
			wantTouched = 4
		}
		if touched != wantTouched {
			t.Errorf("%s: touched = %d, want %d", rep, touched, wantTouched)
		}
		// New port forwards; old port drops (unless another service
		// shares the VIP — VIPs are unique here).
		v, err := sw.Process(packet.TCP4(1, 2, 0x01000000, svc.VIP, 1234, newPort))
		if err != nil || v.Drop {
			t.Fatalf("%s: new port dropped: %+v, %v", rep, v, err)
		}
		if oldPort != newPort {
			v, err = sw.Process(packet.TCP4(1, 2, 0x01000000, svc.VIP, 1234, oldPort))
			if err != nil || !v.Drop {
				t.Fatalf("%s: old port still forwards: %+v, %v", rep, v, err)
			}
		}
	}
}

func TestPlanCatchAllShapes(t *testing.T) {
	g := usecases.Generate(4, 4, 5)
	for _, tc := range []struct {
		rep  usecases.Representation
		mods int
	}{
		{usecases.RepGoto, 1},
		{usecases.RepMetadata, 1},
		{usecases.RepRematch, 1},
		{usecases.RepUniversal, 4}, // one wildcard-port row per backend
	} {
		p, err := PlanCatchAll(g, tc.rep, 1)
		if err != nil {
			t.Fatalf("%s: %v", tc.rep, err)
		}
		if len(p.Mods) != tc.mods || p.EntriesTouched != tc.mods {
			t.Errorf("%s: %d mods / %d touched, want %d", tc.rep, len(p.Mods), p.EntriesTouched, tc.mods)
		}
		for _, m := range p.Mods {
			if m.Command != openflow.FlowAdd {
				t.Errorf("%s: catch-all plans %v, want adds only", tc.rep, m.Command)
			}
		}
	}
	if _, err := PlanCatchAll(g, usecases.RepGoto, 99); err == nil {
		t.Error("bad service index accepted")
	}
}

func TestCatchAllEndToEnd(t *testing.T) {
	g := usecases.Generate(4, 4, 5)
	ctl, sw := endToEnd(t, g, usecases.RepGoto, switches.NewESwitch())
	svc := g.Services[1]
	strayPort := svc.Port + 1

	// Before the catch-all a stray port drops.
	v, err := sw.Process(packet.TCP4(1, 2, 0x01000000, svc.VIP, 1234, strayPort))
	if err != nil || !v.Drop {
		t.Fatalf("stray port forwarded before catch-all: %+v, %v", v, err)
	}
	p, err := PlanCatchAll(g, usecases.RepGoto, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.Apply(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	// After: the stray port funnels into the service's backend pool, and
	// the exact service row stays authoritative (most-specific-wins).
	v, err = sw.Process(packet.TCP4(1, 2, 0x01000000, svc.VIP, 1234, strayPort))
	if err != nil || v.Drop {
		t.Fatalf("stray port dropped after catch-all: %+v, %v", v, err)
	}
	v, err = sw.Process(packet.TCP4(1, 2, 0x01000000, svc.VIP, 1234, svc.Port))
	if err != nil || v.Drop {
		t.Fatalf("exact service port broken by catch-all: %+v, %v", v, err)
	}
}

func TestVIPChangeEndToEnd(t *testing.T) {
	for _, rep := range []usecases.Representation{usecases.RepUniversal, usecases.RepGoto, usecases.RepRematch} {
		g := usecases.Generate(4, 4, 11)
		ctl, sw := endToEnd(t, g, rep, switches.NewESwitch())
		svc := g.Services[1]
		oldVIP := svc.VIP
		newVIP := uint32(0xC00002F0)
		if _, err := ctl.ChangeServiceVIP(context.Background(), 1, newVIP); err != nil {
			t.Fatalf("%s: %v", rep, err)
		}
		v, err := sw.Process(packet.TCP4(1, 2, 0x01000000, newVIP, 1234, svc.Port))
		if err != nil || v.Drop {
			t.Fatalf("%s: new VIP dropped: %+v, %v", rep, v, err)
		}
		v, err = sw.Process(packet.TCP4(1, 2, 0x01000000, oldVIP, 1234, svc.Port))
		if err != nil || !v.Drop {
			t.Fatalf("%s: old VIP still forwards: %+v, %v", rep, v, err)
		}
	}
}

func TestMonitorabilityEndToEnd(t *testing.T) {
	// §2: tenant aggregate needs M counter reads on the universal table,
	// one on the normalized pipeline — and both must agree on the total.
	const pktCount = 40
	for _, tc := range []struct {
		rep      usecases.Representation
		counters int
	}{
		{usecases.RepUniversal, 4},
		{usecases.RepGoto, 1},
		{usecases.RepMetadata, 1},
	} {
		g := usecases.Generate(5, 4, 13)
		ctl, sw := endToEnd(t, g, tc.rep, switches.NewESwitch())
		svc := g.Services[3]
		// Spray traffic across the service's backends.
		for i := 0; i < pktCount; i++ {
			src := uint32(i) * 0x10000019
			if _, err := sw.Process(packet.TCP4(1, 2, src, svc.VIP, 1234, svc.Port)); err != nil {
				t.Fatal(err)
			}
		}
		total, reads, err := ctl.ReadServiceTraffic(context.Background(), 3)
		if err != nil {
			t.Fatalf("%s: %v", tc.rep, err)
		}
		if reads != tc.counters {
			t.Errorf("%s: counters read = %d, want %d", tc.rep, reads, tc.counters)
		}
		if total != pktCount {
			t.Errorf("%s: aggregate = %d, want %d", tc.rep, total, pktCount)
		}
	}
}

func TestPlannerErrors(t *testing.T) {
	g := usecases.Generate(3, 2, 1)
	if _, err := PlanPortChange(g, usecases.RepUniversal, 99, 1); err == nil {
		t.Errorf("bad index accepted")
	}
	if _, err := PlanPortChange(g, usecases.Representation("x"), 0, 1); err == nil {
		t.Errorf("bad representation accepted")
	}
	if _, err := PlanVIPChange(g, usecases.Representation("x"), 0, 1); err == nil {
		t.Errorf("bad representation accepted")
	}
	if _, err := PlanVIPChange(g, usecases.RepGoto, -1, 1); err == nil {
		t.Errorf("negative index accepted")
	}
}

// canonicalJSON renders a pipeline with every table's entries sorted, via
// a JSON round-trip clone so the live pipeline is left untouched —
// matching is order-free, so runs whose resends installed entries in a
// different order compare equal.
func canonicalJSON(t *testing.T, p *mat.Pipeline) string {
	t.Helper()
	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var cp mat.Pipeline
	if err := json.Unmarshal(raw, &cp); err != nil {
		t.Fatal(err)
	}
	for _, st := range cp.Stages {
		st.Table.SortEntries()
	}
	out, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestBarrierAcrossCutCompletesExactlyOnce forces a mid-frame disconnect
// at every write position of a port-change transaction — the cut lands
// inside a flow-mod for early positions and inside the barrier exchange
// for late ones — and requires that the update either completes exactly
// once (the client reconnects, replays its resend queue under the
// original xids, the agent deduplicates, and the final state equals the
// fault-free reference) or surfaces a typed openflow error. It must
// never hang: every attempt runs under a deadline with bounded retries.
func TestBarrierAcrossCutCompletesExactlyOnce(t *testing.T) {
	for cut := 1; cut <= 6; cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut_after_%d_writes", cut), func(t *testing.T) {
			g := usecases.Generate(4, 4, 21)
			p, err := g.Build(usecases.RepGoto)
			if err != nil {
				t.Fatal(err)
			}
			agent, err := openflow.NewAgent(switches.NewESwitch(), p)
			if err != nil {
				t.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { ln.Close() })
			go func() {
				// Sequential sessions: the post-cut redial is served by the
				// next accept.
				for {
					c, err := ln.Accept()
					if err != nil {
						return
					}
					_ = agent.Serve(context.Background(), c)
				}
			}()

			addr := ln.Addr().String()
			dials := 0
			dialer := func() (net.Conn, error) {
				raw, err := net.Dial("tcp", addr)
				if err != nil {
					return nil, err
				}
				fc := faultconn.Config{Seed: int64(cut)}
				if dials == 0 {
					fc.CutAfterWrites = cut
					fc.CutMidFrame = true
				}
				dials++
				return faultconn.Wrap(raw, fc), nil
			}
			client, err := openflow.NewClient(nil,
				openflow.WithDialer(dialer),
				openflow.WithRPCTimeout(50*time.Millisecond),
				openflow.WithRetryPolicy(openflow.RetryPolicy{
					Base: time.Millisecond, Max: 20 * time.Millisecond,
					Multiplier: 2, Jitter: 0.25, MaxRetries: 4, Seed: int64(cut),
				}),
			)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { client.Close() })

			ctl := &Controller{Client: client, Rep: usecases.RepGoto, Config: g}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			start := time.Now()
			_, err = ctl.ChangeServicePort(ctx, 1, uint16(30000+cut))
			if ctx.Err() != nil {
				t.Fatalf("barrier across cut hung (%s elapsed)", time.Since(start))
			}
			if err != nil {
				// A surfaced failure must be typed: a structured *OpError or
				// *SwitchError, or one of the sentinel classes — callers
				// branch with errors.Is/As, never on message strings.
				var oe *openflow.OpError
				var se *openflow.SwitchError
				if !errors.As(err, &oe) && !errors.As(err, &se) &&
					!errors.Is(err, openflow.ErrTimeout) && !errors.Is(err, openflow.ErrClosed) {
					t.Fatalf("untyped error surfaced: %v", err)
				}
				return
			}
			// Completed: the switch state must equal the fault-free
			// reference — the barrier committed the update exactly once
			// (duplicate re-deliveries were absorbed by xid dedup, never
			// applied twice).
			ref, err := g.Build(usecases.RepGoto)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := canonicalJSON(t, agent.Pipeline()), canonicalJSON(t, ref); got != want {
				t.Fatal("post-cut state diverged from the fault-free reference")
			}
		})
	}
}
