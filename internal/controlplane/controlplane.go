// Package controlplane implements the controller side of the paper's
// operational story (§2): a high-level service configuration (the cloud
// gateway & load balancer), compiled to any of the four representations,
// plus *update planners* that translate intents ("move tenant 1 to HTTPS",
// "renumber the VIP", "reweight the backends") into the flow-mods each
// representation requires.
//
// The size of those plans is the paper's controllability metric: a service
// update touches M entries in the universal table but a single entry in
// the normalized pipeline, and monitoring a tenant's aggregate needs M
// counters versus one.
package controlplane

import (
	"context"
	"fmt"
	"sync/atomic"

	"manorm/internal/mat"
	"manorm/internal/openflow"
	"manorm/internal/packet"
	"manorm/internal/telemetry"
	"manorm/internal/usecases"
)

// Plan is the list of flow-mods realizing one intent on one
// representation, plus accounting.
type Plan struct {
	Mods []openflow.FlowMod
	// EntriesTouched counts logical table entries the intent rewrites —
	// the paper's update-effort metric (a rewritten entry is a
	// delete+add pair on the wire).
	EntriesTouched int
}

// matchIPDstPort builds the (ip_dst, tcp_dst) match of a service.
func matchIPDstPort(vip uint32, port uint16) []openflow.MatchField {
	return []openflow.MatchField{
		{Name: packet.FieldIPDst, Width: 32, Cell: mat.Exact(uint64(vip), 32)},
		{Name: packet.FieldTCPDst, Width: 16, Cell: mat.Exact(uint64(port), 16)},
	}
}

// serviceCells recomputes a service's load-balancing split. It re-runs the
// same splitter the compilers use, so planner output matches installed
// state.
func serviceCells(svc usecases.Service) ([]mat.Cell, []int, error) {
	g := usecases.GwLB{Services: []usecases.Service{svc}}
	t, err := g.Universal()
	if err != nil {
		return nil, nil, err
	}
	cells := make([]mat.Cell, len(t.Entries))
	outs := make([]int, len(t.Entries))
	for i, e := range t.Entries {
		cells[i] = e[0]
		outs[i] = int(e[3].Bits)
	}
	return cells, outs, nil
}

// PlanPortChange plans moving service svcIdx to a new TCP port.
func PlanPortChange(g *usecases.GwLB, rep usecases.Representation, svcIdx int, newPort uint16) (*Plan, error) {
	if svcIdx < 0 || svcIdx >= len(g.Services) {
		return nil, fmt.Errorf("controlplane: service %d out of range", svcIdx)
	}
	svc := g.Services[svcIdx]
	p := &Plan{}
	switch rep {
	case usecases.RepUniversal:
		// Every backend entry of the service carries the (VIP, port)
		// pair: all M must be rewritten.
		cells, outs, err := serviceCells(svc)
		if err != nil {
			return nil, err
		}
		for i, c := range cells {
			oldMatch := append([]openflow.MatchField{
				{Name: packet.FieldIPSrc, Width: 32, Cell: c},
			}, matchIPDstPort(svc.VIP, svc.Port)...)
			newMatch := append([]openflow.MatchField{
				{Name: packet.FieldIPSrc, Width: 32, Cell: c},
			}, matchIPDstPort(svc.VIP, newPort)...)
			p.Mods = append(p.Mods,
				openflow.FlowMod{Command: openflow.FlowDelete, TableID: 0, Match: oldMatch},
				openflow.FlowMod{Command: openflow.FlowAdd, TableID: 0, Match: newMatch,
					Actions: []openflow.ActionField{{Name: "out", Width: 16, Value: uint64(outs[i])}}},
			)
			p.EntriesTouched++
		}
	case usecases.RepGoto:
		p.Mods = append(p.Mods,
			openflow.FlowMod{Command: openflow.FlowDelete, TableID: 0, Match: matchIPDstPort(svc.VIP, svc.Port)},
			openflow.FlowMod{Command: openflow.FlowAdd, TableID: 0, Match: matchIPDstPort(svc.VIP, newPort),
				Actions: []openflow.ActionField{{Name: mat.GotoAttr, Width: 16, Value: uint64(svcIdx + 1)}}},
		)
		p.EntriesTouched = 1
	case usecases.RepMetadata:
		mn := mat.MetaPrefix + "_svc"
		p.Mods = append(p.Mods,
			openflow.FlowMod{Command: openflow.FlowDelete, TableID: 0, Match: matchIPDstPort(svc.VIP, svc.Port)},
			openflow.FlowMod{Command: openflow.FlowAdd, TableID: 0, Match: matchIPDstPort(svc.VIP, newPort),
				Actions: []openflow.ActionField{{Name: mn, Width: 16, Value: uint64(svcIdx)}}},
		)
		p.EntriesTouched = 1
	case usecases.RepRematch:
		// First stage matches (ip_dst, tcp_dst) with no actions.
		p.Mods = append(p.Mods,
			openflow.FlowMod{Command: openflow.FlowDelete, TableID: 0, Match: matchIPDstPort(svc.VIP, svc.Port)},
			openflow.FlowMod{Command: openflow.FlowAdd, TableID: 0, Match: matchIPDstPort(svc.VIP, newPort)},
		)
		p.EntriesTouched = 1
	default:
		return nil, fmt.Errorf("controlplane: unknown representation %q", rep)
	}
	return p, nil
}

// PlanCatchAll plans a wildcard-port catch-all for service svcIdx: a
// single first-stage entry matching the service's VIP on *any* TCP port
// and steering to the service's backend pool, so probes and stray ports
// land on the service instead of the table miss. The entry's total
// specificity (ip_dst/32 + tcp_dst/0) sits strictly below the exact
// (VIP, port) rows, so most-specific-wins keeps the exact services
// authoritative and the added row never introduces ambiguity. The
// catch-all's match region overlaps every exact row of the same VIP —
// fabric.Commutes conservatively serializes it against concurrent
// deletes of those rows, which makes it the canonical false-conflict
// probe for the semantic commutation oracle.
func PlanCatchAll(g *usecases.GwLB, rep usecases.Representation, svcIdx int) (*Plan, error) {
	if svcIdx < 0 || svcIdx >= len(g.Services) {
		return nil, fmt.Errorf("controlplane: service %d out of range", svcIdx)
	}
	svc := g.Services[svcIdx]
	match := []openflow.MatchField{
		{Name: packet.FieldIPDst, Width: 32, Cell: mat.Exact(uint64(svc.VIP), 32)},
		{Name: packet.FieldTCPDst, Width: 16, Cell: mat.Any()},
	}
	p := &Plan{EntriesTouched: 1}
	switch rep {
	case usecases.RepGoto:
		p.Mods = append(p.Mods, openflow.FlowMod{Command: openflow.FlowAdd, TableID: 0, Match: match,
			Actions: []openflow.ActionField{{Name: mat.GotoAttr, Width: 16, Value: uint64(svcIdx + 1)}}})
	case usecases.RepMetadata:
		p.Mods = append(p.Mods, openflow.FlowMod{Command: openflow.FlowAdd, TableID: 0, Match: match,
			Actions: []openflow.ActionField{{Name: mat.MetaPrefix + "_svc", Width: 16, Value: uint64(svcIdx)}}})
	case usecases.RepRematch:
		p.Mods = append(p.Mods, openflow.FlowMod{Command: openflow.FlowAdd, TableID: 0, Match: match})
	case usecases.RepUniversal:
		// No service funnel exists: the catch-all is one wildcard-port row
		// per backend entry.
		cells, outs, err := serviceCells(svc)
		if err != nil {
			return nil, err
		}
		p.EntriesTouched = 0
		for i, c := range cells {
			m := append([]openflow.MatchField{
				{Name: packet.FieldIPSrc, Width: 32, Cell: c},
			}, match...)
			p.Mods = append(p.Mods, openflow.FlowMod{Command: openflow.FlowAdd, TableID: 0, Match: m,
				Actions: []openflow.ActionField{{Name: "out", Width: 16, Value: uint64(outs[i])}}})
			p.EntriesTouched++
		}
	default:
		return nil, fmt.Errorf("controlplane: unknown representation %q", rep)
	}
	return p, nil
}

// PlanVIPChange plans renumbering service svcIdx to a new public VIP.
func PlanVIPChange(g *usecases.GwLB, rep usecases.Representation, svcIdx int, newVIP uint32) (*Plan, error) {
	if svcIdx < 0 || svcIdx >= len(g.Services) {
		return nil, fmt.Errorf("controlplane: service %d out of range", svcIdx)
	}
	svc := g.Services[svcIdx]
	p := &Plan{}
	touchFirst := func(actions []openflow.ActionField) {
		p.Mods = append(p.Mods,
			openflow.FlowMod{Command: openflow.FlowDelete, TableID: 0, Match: matchIPDstPort(svc.VIP, svc.Port)},
			openflow.FlowMod{Command: openflow.FlowAdd, TableID: 0, Match: matchIPDstPort(newVIP, svc.Port), Actions: actions},
		)
		p.EntriesTouched++
	}
	switch rep {
	case usecases.RepUniversal:
		cells, outs, err := serviceCells(svc)
		if err != nil {
			return nil, err
		}
		for i, c := range cells {
			oldMatch := append([]openflow.MatchField{
				{Name: packet.FieldIPSrc, Width: 32, Cell: c},
			}, matchIPDstPort(svc.VIP, svc.Port)...)
			newMatch := append([]openflow.MatchField{
				{Name: packet.FieldIPSrc, Width: 32, Cell: c},
			}, matchIPDstPort(newVIP, svc.Port)...)
			p.Mods = append(p.Mods,
				openflow.FlowMod{Command: openflow.FlowDelete, TableID: 0, Match: oldMatch},
				openflow.FlowMod{Command: openflow.FlowAdd, TableID: 0, Match: newMatch,
					Actions: []openflow.ActionField{{Name: "out", Width: 16, Value: uint64(outs[i])}}},
			)
			p.EntriesTouched++
		}
	case usecases.RepGoto:
		touchFirst([]openflow.ActionField{{Name: mat.GotoAttr, Width: 16, Value: uint64(svcIdx + 1)}})
	case usecases.RepMetadata:
		touchFirst([]openflow.ActionField{{Name: mat.MetaPrefix + "_svc", Width: 16, Value: uint64(svcIdx)}})
	case usecases.RepRematch:
		// The first stage entry changes AND every second-stage entry
		// re-matching ip_dst must be rewritten: rematch forfeits the
		// controllability benefit for VIP renumbering.
		touchFirst(nil)
		cells, outs, err := serviceCells(svc)
		if err != nil {
			return nil, err
		}
		for i, c := range cells {
			oldMatch := []openflow.MatchField{
				{Name: packet.FieldIPDst, Width: 32, Cell: mat.Exact(uint64(svc.VIP), 32)},
				{Name: packet.FieldIPSrc, Width: 32, Cell: c},
			}
			newMatch := []openflow.MatchField{
				{Name: packet.FieldIPDst, Width: 32, Cell: mat.Exact(uint64(newVIP), 32)},
				{Name: packet.FieldIPSrc, Width: 32, Cell: c},
			}
			p.Mods = append(p.Mods,
				openflow.FlowMod{Command: openflow.FlowDelete, TableID: 1, Match: oldMatch},
				openflow.FlowMod{Command: openflow.FlowAdd, TableID: 1, Match: newMatch,
					Actions: []openflow.ActionField{{Name: "out", Width: 16, Value: uint64(outs[i])}}},
			)
			p.EntriesTouched++
		}
	default:
		return nil, fmt.Errorf("controlplane: unknown representation %q", rep)
	}
	return p, nil
}

// CounterPlacement returns the (stage, entry indices) whose counters must
// be summed to monitor service svcIdx's aggregate traffic — the
// monitorability metric of §2.
func CounterPlacement(g *usecases.GwLB, rep usecases.Representation, svcIdx int) (stage int, entries []int, err error) {
	if svcIdx < 0 || svcIdx >= len(g.Services) {
		return 0, nil, fmt.Errorf("controlplane: service %d out of range", svcIdx)
	}
	switch rep {
	case usecases.RepUniversal:
		// All M backend entries of the service, located by position: the
		// universal compiler emits services in order.
		pos := 0
		for i := 0; i < svcIdx; i++ {
			cells, _, err := serviceCells(g.Services[i])
			if err != nil {
				return 0, nil, err
			}
			pos += len(cells)
		}
		cells, _, err := serviceCells(g.Services[svcIdx])
		if err != nil {
			return 0, nil, err
		}
		for i := range cells {
			entries = append(entries, pos+i)
		}
		return 0, entries, nil
	case usecases.RepGoto, usecases.RepMetadata, usecases.RepRematch:
		// All traffic of the service funnels through its single
		// first-stage entry.
		return 0, []int{svcIdx}, nil
	default:
		return 0, nil, fmt.Errorf("controlplane: unknown representation %q", rep)
	}
}

// Controller drives a switch over the OpenFlow channel, keeping the
// desired service state and applying intents through the planners. Every
// intent takes a context for cancellation and deadlines; channel failures
// propagate as the openflow package's typed errors (errors.Is against
// openflow.ErrTimeout / ErrClosed, errors.As for *openflow.OpError and
// *openflow.SwitchError), wrapped with the failing intent.
type Controller struct {
	Client *openflow.Client
	Rep    usecases.Representation
	Config *usecases.GwLB

	// Churn counters: intents executed, plans applied, flow-mods pushed
	// and entries touched — the controllability metrics of §2, read with
	// atomic loads or through Stats.
	intents        atomic.Uint64
	plansApplied   atomic.Uint64
	modsPushed     atomic.Uint64
	entriesTouched atomic.Uint64
}

// Stats reports the controller's churn telemetry (telemetry.Provider):
// how many intents ran, how many flow-mods they cost, and — nested under
// "client" — the control channel's resilience and latency view. The
// mods-per-intent ratio is the paper's update-effort metric observed at
// runtime.
func (c *Controller) Stats() telemetry.Snapshot {
	snap := telemetry.Snapshot{
		Name: "controlplane",
		Counters: map[string]uint64{
			"intents":         c.intents.Load(),
			"plans_applied":   c.plansApplied.Load(),
			"mods_pushed":     c.modsPushed.Load(),
			"entries_touched": c.entriesTouched.Load(),
		},
	}
	if c.Client != nil {
		snap.Providers = map[string]telemetry.Snapshot{"client": c.Client.Stats()}
	}
	return snap
}

// Apply pushes a plan and commits it with a barrier.
func (c *Controller) Apply(ctx context.Context, p *Plan) error {
	for i := range p.Mods {
		if err := c.Client.SendFlowMod(ctx, &p.Mods[i]); err != nil {
			return fmt.Errorf("controlplane: apply mod %d/%d: %w", i+1, len(p.Mods), err)
		}
		c.modsPushed.Add(1)
	}
	if err := c.Client.Barrier(ctx); err != nil {
		return fmt.Errorf("controlplane: apply commit: %w", err)
	}
	c.plansApplied.Add(1)
	c.entriesTouched.Add(uint64(p.EntriesTouched))
	return nil
}

// ChangeServicePort executes the port-change intent end to end and
// records the new desired state. It returns the entries touched.
func (c *Controller) ChangeServicePort(ctx context.Context, svcIdx int, newPort uint16) (int, error) {
	c.intents.Add(1)
	p, err := PlanPortChange(c.Config, c.Rep, svcIdx, newPort)
	if err != nil {
		return 0, err
	}
	if err := c.Apply(ctx, p); err != nil {
		return 0, err
	}
	c.Config.Services[svcIdx].Port = newPort
	return p.EntriesTouched, nil
}

// ChangeServiceVIP executes the VIP renumbering intent end to end.
func (c *Controller) ChangeServiceVIP(ctx context.Context, svcIdx int, newVIP uint32) (int, error) {
	c.intents.Add(1)
	p, err := PlanVIPChange(c.Config, c.Rep, svcIdx, newVIP)
	if err != nil {
		return 0, err
	}
	if err := c.Apply(ctx, p); err != nil {
		return 0, err
	}
	c.Config.Services[svcIdx].VIP = newVIP
	return p.EntriesTouched, nil
}

// ReadServiceTraffic sums the counters monitoring one service, returning
// the aggregate count and how many counters had to be read.
func (c *Controller) ReadServiceTraffic(ctx context.Context, svcIdx int) (total uint64, countersRead int, err error) {
	stage, entries, err := CounterPlacement(c.Config, c.Rep, svcIdx)
	if err != nil {
		return 0, 0, err
	}
	counts, err := c.Client.ReadStats(ctx, stage)
	if err != nil {
		return 0, 0, fmt.Errorf("controlplane: traffic read: %w", err)
	}
	for _, ei := range entries {
		if ei >= len(counts) {
			return 0, 0, fmt.Errorf("controlplane: counter index %d out of range", ei)
		}
		total += counts[ei]
	}
	return total, len(entries), nil
}
